//! Selinger-style query optimizer: access-path selection per table plus
//! dynamic-programming join ordering over table subsets.
//!
//! The optimizer only reads catalog *estimates* (statistics and
//! [`IndexEstimate`]s), never the physical trees, which is what makes
//! hypothetical what-if optimization (§ [`crate::whatif`]) possible: a
//! hypothetical index is simply an entry in the [`IndexSetView`] overlay.

use crate::cost::{hash_join_cost, index_nl_join_cost, index_scan_cost, seq_scan_cost};
use crate::plan::{AccessPath, Plan, PlanNode};
use crate::query::{JoinPred, Query};
use crate::selectivity::{predicate_selectivity, table_selectivity};
use colt_catalog::{ColRef, Database, PhysicalConfig, TableId};
use std::collections::BTreeSet;

/// Maximum number of tables a query may join. Workload queries use at
/// most four; the hard cap keeps the subset DP bounded.
pub const MAX_JOIN_TABLES: usize = 12;

/// A view of "which indices exist" composed of the real physical
/// configuration plus a hypothetical overlay: `plus` adds indices that
/// are not materialized, `minus` hides indices that are.
#[derive(Debug, Clone, Copy)]
pub struct IndexSetView<'a> {
    config: &'a PhysicalConfig,
    plus: Option<&'a BTreeSet<ColRef>>,
    minus: Option<&'a BTreeSet<ColRef>>,
}

impl<'a> IndexSetView<'a> {
    /// The real configuration, unmodified.
    pub fn real(config: &'a PhysicalConfig) -> Self {
        IndexSetView { config, plus: None, minus: None }
    }

    /// The real configuration with a hypothetical overlay.
    pub fn hypothetical(
        config: &'a PhysicalConfig,
        plus: &'a BTreeSet<ColRef>,
        minus: &'a BTreeSet<ColRef>,
    ) -> Self {
        IndexSetView { config, plus: Some(plus), minus: Some(minus) }
    }

    /// Composite (multi-column) indices materialized on a table. These
    /// are part of the base configuration (see `colt_catalog::composite`)
    /// and have no hypothetical overlay.
    pub fn composites_on(
        &self,
        table: TableId,
    ) -> impl Iterator<Item = &'a colt_catalog::MaterializedComposite> + '_ {
        self.config.composites_on(table)
    }

    /// Does the view contain an index on `col`?
    pub fn has(&self, col: ColRef) -> bool {
        if self.minus.is_some_and(|m| m.contains(&col)) {
            return false;
        }
        self.config.contains(col) || self.plus.is_some_and(|p| p.contains(&col))
    }
}

/// Optional optimizer features.
///
/// The defaults match the engine configuration used by the paper
/// reproduction. Index nested-loop joins are an extension: they make
/// join-column indices valuable (not only selection columns), but they
/// also break the per-table cost separability that makes the OFFLINE
/// baseline provably exhaustive-equivalent, so the experiment benches
/// keep them off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Consider index nested-loop joins when the inner side is a base
    /// table with an index on its join column.
    pub enable_index_nl_join: bool,
}

/// The optimizer. Stateless apart from the database reference; every
/// call prices plans under a caller-supplied [`IndexSetView`].
#[derive(Debug, Clone, Copy)]
pub struct Optimizer<'a> {
    db: &'a Database,
    options: OptimizerOptions,
}

/// Best access path for one table, cached and reused across what-if
/// probes that do not touch the table.
#[derive(Debug, Clone)]
pub struct ScanChoice {
    /// The resulting scan node.
    pub node: PlanNode,
    /// Number of selection predicates on the table in this query.
    pub pred_count: usize,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer over a database with default options.
    pub fn new(db: &'a Database) -> Self {
        Optimizer { db, options: OptimizerOptions::default() }
    }

    /// Create an optimizer with explicit options.
    pub fn with_options(db: &'a Database, options: OptimizerOptions) -> Self {
        Optimizer { db, options }
    }

    /// Optimize a query under the given index view.
    pub fn optimize(&self, query: &Query, view: IndexSetView<'_>) -> Plan {
        let scans: Vec<ScanChoice> =
            query.tables.iter().map(|&t| self.best_scan(query, t, view)).collect();
        self.join_order(query, scans, view)
    }

    /// Choose the cheapest access path for `table`: a sequential scan, or
    /// an index scan driven by any sargable predicate whose column has an
    /// index in `view`.
    pub fn best_scan(&self, query: &Query, table: TableId, view: IndexSetView<'_>) -> ScanChoice {
        let t = self.db.table(table);
        let rows = t.heap.row_count() as f64;
        let pages = t.heap.page_count() as f64;
        let preds: Vec<_> = query.selections_on(table).collect();
        let combined_sel = table_selectivity(self.db, query, table);
        let est_rows = (rows * combined_sel).max(0.0);

        let mut best_cost = seq_scan_cost(&self.db.cost, pages, rows, preds.len());
        let mut best_path = AccessPath::SeqScan;

        for p in &preds {
            if !view.has(p.col) {
                continue;
            }
            let sel = predicate_selectivity(self.db, p);
            let est = self.db.index_estimate(p.col);
            let cost =
                index_scan_cost(&self.db.cost, &est, sel, rows, pages, preds.len().saturating_sub(1));
            if cost < best_cost {
                best_cost = cost;
                best_path = AccessPath::IndexScan { col: p.col };
            }
        }

        // Composite (multi-column) paths: usable when the predicates
        // match a prefix of the column list — a run of equalities,
        // optionally followed by one range on the next column.
        for comp in view.composites_on(table) {
            use crate::query::PredicateKind;
            let mut eq_prefix = 0u32;
            let mut sel = 1.0;
            let mut used = 0usize;
            let mut range_next = false;
            for &c in &comp.key.columns {
                let col = ColRef::new(table, c);
                if let Some(p) = preds
                    .iter()
                    .find(|p| p.col == col && matches!(p.kind, PredicateKind::Eq(_)))
                {
                    sel *= predicate_selectivity(self.db, p);
                    eq_prefix += 1;
                    used += 1;
                    continue;
                }
                if let Some(p) = preds
                    .iter()
                    .find(|p| p.col == col && matches!(p.kind, PredicateKind::Range { .. }))
                {
                    sel *= predicate_selectivity(self.db, p);
                    used += 1;
                    range_next = true;
                }
                break;
            }
            if used == 0 {
                continue;
            }
            let est = comp.key.estimate(self.db);
            let cost = index_scan_cost(
                &self.db.cost,
                &est,
                sel,
                rows,
                pages,
                preds.len().saturating_sub(used),
            );
            if cost < best_cost {
                best_cost = cost;
                best_path = AccessPath::CompositeScan {
                    key: comp.key.clone(),
                    eq_prefix,
                    range_next,
                };
            }
        }

        ScanChoice {
            node: PlanNode::Scan { table, path: best_path, est_rows, est_cost: best_cost },
            pred_count: preds.len(),
        }
    }

    /// Join-order the per-table scans with a dynamic program over table
    /// subsets (bushy plans allowed, Cartesian products only as a last
    /// resort).
    pub fn join_order(&self, query: &Query, scans: Vec<ScanChoice>, view: IndexSetView<'_>) -> Plan {
        let n = query.tables.len();
        assert!(n >= 1, "query must reference at least one table");
        assert!(n <= MAX_JOIN_TABLES, "too many tables for the join DP");
        if n == 1 {
            // colt: allow(panic-policy) — n == 1 guarantees exactly one scan
            return Plan { root: scans.into_iter().next().expect("one scan").node };
        }

        // best[mask] = best plan covering the tables in `mask`.
        let full = (1usize << n) - 1;
        let mut best: Vec<Option<PlanNode>> = vec![None; full + 1];
        for (i, s) in scans.into_iter().enumerate() {
            best[1 << i] = Some(s.node);
        }

        // Pre-compute estimated cardinality for every subset: the product
        // of per-table filtered rows times the selectivity of every join
        // predicate internal to the subset.
        let table_rows: Vec<f64> = query
            .tables
            .iter()
            .map(|&t| {
                let rows = self.db.table(t).heap.row_count() as f64;
                rows * table_selectivity(self.db, query, t)
            })
            .collect();
        let subset_rows = |mask: usize| -> f64 {
            let mut rows = 1.0;
            for (i, r) in table_rows.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    rows *= r.max(1.0);
                }
            }
            for j in &query.joins {
                let li = query.tables.iter().position(|&t| t == j.left.table);
                let ri = query.tables.iter().position(|&t| t == j.right.table);
                if let (Some(li), Some(ri)) = (li, ri) {
                    if mask & (1 << li) != 0 && mask & (1 << ri) != 0 {
                        rows /= self.join_ndv(j).max(1.0);
                    }
                }
            }
            rows.max(0.0)
        };

        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let out_rows = subset_rows(mask);
            // Enumerate proper sub-splits; `sub` iterates submasks.
            let mut sub = (mask - 1) & mask;
            let mut best_cost = f64::INFINITY;
            let mut best_node: Option<PlanNode> = None;
            let mut connected_found = false;
            while sub != 0 {
                let other = mask ^ sub;
                if sub < other {
                    // Each unordered split visited once.
                    if let (Some(l), Some(r)) = (&best[sub], &best[other]) {
                        let on = self.connecting_joins(query, sub, other);
                        let connected = !on.is_empty();
                        if connected && !connected_found {
                            // First connected split invalidates any
                            // Cartesian candidate collected so far.
                            best_cost = f64::INFINITY;
                            best_node = None;
                            connected_found = true;
                        }
                        if connected == connected_found {
                            let (build, probe) =
                                if l.est_rows() <= r.est_rows() { (l, r) } else { (r, l) };
                            let jc = if connected {
                                hash_join_cost(
                                    &self.db.cost,
                                    build.est_rows(),
                                    probe.est_rows(),
                                    out_rows,
                                )
                            } else {
                                // Cartesian product: nested loop over both inputs.
                                self.db.cost.cpu_operator_cost
                                    * (build.est_rows() * probe.est_rows()).max(1.0)
                            };
                            let cost = build.est_cost() + probe.est_cost() + jc;
                            if cost < best_cost {
                                best_cost = cost;
                                best_node = Some(PlanNode::HashJoin {
                                    build: Box::new(build.clone()),
                                    probe: Box::new(probe.clone()),
                                    on: on.clone(),
                                    est_rows: out_rows,
                                    est_cost: cost,
                                });
                            }

                            // Alternative: index nested-loop join when
                            // one side is a single base table with an
                            // index on its join column.
                            if connected && self.options.enable_index_nl_join {
                                for (inner_mask, outer_node) in
                                    [(sub, &best[other]), (other, &best[sub])]
                                {
                                    if inner_mask.count_ones() != 1 {
                                        continue;
                                    }
                                    let ti = inner_mask.trailing_zeros() as usize;
                                    let inner = query.tables[ti];
                                    let Some(outer_node) = outer_node else { continue };
                                    if let Some((node_cost, node)) = self.consider_inl(
                                        query, &on, inner, outer_node, out_rows, view,
                                    ) {
                                        if node_cost < best_cost {
                                            best_cost = node_cost;
                                            best_node = Some(node);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            best[mask] = best_node;
        }

        // colt: allow(panic-policy) — the DP seeds every singleton, so the full mask is always reachable
        Plan { root: best[full].take().expect("join DP must cover all tables") }
    }

    /// Price an index nested-loop join with `inner` as the probed base
    /// table, if any connecting join predicate has an index on its
    /// inner-side column.
    fn consider_inl(
        &self,
        query: &Query,
        on: &[JoinPred],
        inner: TableId,
        outer: &PlanNode,
        out_rows: f64,
        view: IndexSetView<'_>,
    ) -> Option<(f64, PlanNode)> {
        let t = self.db.table(inner);
        let inner_rows = t.heap.row_count() as f64;
        let inner_pages = t.heap.page_count() as f64;
        let inner_preds = query.selections_on(inner).count();

        let mut best: Option<(f64, PlanNode)> = None;
        for (k, j) in on.iter().enumerate() {
            let Some(col) = j.side_on(inner) else { continue };
            if !view.has(col) {
                continue;
            }
            let est = self.db.index_estimate(col);
            let ndv = if t.stats.is_empty() {
                inner_rows
            } else {
                t.column_stats(col.column).n_distinct as f64
            };
            let matches = (inner_rows / ndv.max(1.0)).max(0.0);
            let residual = inner_preds + (on.len() - 1);
            let jc = index_nl_join_cost(
                &self.db.cost,
                outer.est_rows(),
                &est,
                matches,
                inner_pages,
                residual,
            );
            let cost = outer.est_cost() + jc;
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                let residual_on: Vec<JoinPred> =
                    on.iter().enumerate().filter(|(i, _)| *i != k).map(|(_, j)| *j).collect();
                best = Some((
                    cost,
                    PlanNode::IndexNlJoin {
                        outer: Box::new(outer.clone()),
                        inner,
                        index: col,
                        probe_on: *j,
                        residual_on,
                        est_rows: out_rows,
                        est_cost: cost,
                    },
                ));
            }
        }
        best
    }

    /// Join predicates with one side in each subset.
    fn connecting_joins(&self, query: &Query, left_mask: usize, right_mask: usize) -> Vec<JoinPred> {
        let side = |t: TableId| query.tables.iter().position(|&x| x == t);
        query
            .joins
            .iter()
            .filter(|j| {
                let (Some(li), Some(ri)) = (side(j.left.table), side(j.right.table)) else {
                    return false;
                };
                let (lm, rm) = (1usize << li, 1usize << ri);
                (lm & left_mask != 0 && rm & right_mask != 0)
                    || (lm & right_mask != 0 && rm & left_mask != 0)
            })
            .copied()
            .collect()
    }

    /// Larger distinct count of the two join columns (join selectivity
    /// denominator).
    fn join_ndv(&self, j: &JoinPred) -> f64 {
        let ndv = |c: ColRef| {
            let t = self.db.table(c.table);
            if t.stats.is_empty() {
                t.heap.row_count() as f64
            } else {
                t.column_stats(c.column).n_distinct as f64
            }
        };
        ndv(j.left).max(ndv(j.right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SelPred;
    use colt_catalog::{Column, IndexOrigin, TableSchema};
    use colt_storage::{row_from, Value, ValueType};

    /// Two-table database: `big` (50k rows, fk into dim) and `dim` (500).
    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let big = db.add_table(TableSchema::new(
            "big",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("fk", ValueType::Int),
                Column::new("v", ValueType::Int),
            ],
        ));
        let dim = db.add_table(TableSchema::new(
            "dim",
            vec![Column::new("id", ValueType::Int), Column::new("grp", ValueType::Int)],
        ));
        db.insert_rows(
            big,
            (0..50_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 500), Value::Int(i % 1000)])),
        );
        db.insert_rows(dim, (0..500i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 10)])));
        db.analyze_all();
        (db, big, dim)
    }

    #[test]
    fn single_table_seq_scan_without_index() {
        let (db, big, _) = db();
        let cfg = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let q = Query::single(big, vec![SelPred::eq(ColRef::new(big, 0), 42i64)]);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(matches!(plan.root, PlanNode::Scan { path: AccessPath::SeqScan, .. }));
        assert!(plan.used_indices().is_empty());
    }

    #[test]
    fn selective_predicate_picks_index_when_available() {
        let (db, big, _) = db();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(big, 0);
        cfg.create_index(&db, col, IndexOrigin::Online);
        let opt = Optimizer::new(&db);
        let q = Query::single(big, vec![SelPred::eq(col, 42i64)]);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.used_indices(), vec![col]);
        // And the indexed plan must be cheaper than the forced seq scan.
        let seq_plan = opt.optimize(&q, IndexSetView::real(&PhysicalConfig::new()));
        assert!(plan.est_cost() < seq_plan.est_cost());
    }

    #[test]
    fn unselective_predicate_keeps_seq_scan() {
        let (db, big, _) = db();
        let mut cfg = PhysicalConfig::new();
        let col = ColRef::new(big, 2); // 1000 distinct over 50k rows
        cfg.create_index(&db, col, IndexOrigin::Online);
        let opt = Optimizer::new(&db);
        // 80% of the value range.
        let q = Query::single(big, vec![SelPred::between(col, 0i64, 799i64)]);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(plan.used_indices().is_empty(), "unselective range should not use the index");
    }

    #[test]
    fn hypothetical_view_adds_and_hides() {
        let (db, big, _) = db();
        let mut cfg = PhysicalConfig::new();
        let real_col = ColRef::new(big, 0);
        cfg.create_index(&db, real_col, IndexOrigin::Online);
        let hypo_col = ColRef::new(big, 1);
        let plus = BTreeSet::from([hypo_col]);
        let minus = BTreeSet::from([real_col]);
        let view = IndexSetView::hypothetical(&cfg, &plus, &minus);
        assert!(view.has(hypo_col));
        assert!(!view.has(real_col));
        assert!(IndexSetView::real(&cfg).has(real_col));
        assert!(!IndexSetView::real(&cfg).has(hypo_col));
    }

    #[test]
    fn two_table_join_plan() {
        let (db, big, dim) = db();
        let cfg = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let q = Query::join(
            vec![big, dim],
            vec![JoinPred::new(ColRef::new(big, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 1), 3i64)],
        );
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let PlanNode::HashJoin { build, probe, on, est_rows, .. } = &plan.root else {
            panic!("expected a join root: {}", plan.explain());
        };
        assert_eq!(on.len(), 1);
        // Build side must be the smaller (filtered dim) input.
        assert!(build.est_rows() <= probe.est_rows());
        // ~10% of dim joins with big: expect about 5000 output rows.
        assert!((*est_rows - 5000.0).abs() < 2500.0, "rows {est_rows}");
    }

    #[test]
    fn three_table_join_covers_all_tables() {
        let (mut db, big, dim) = db();
        let extra = db.add_table(TableSchema::new(
            "extra",
            vec![Column::new("id", ValueType::Int)],
        ));
        db.insert_rows(extra, (0..100i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        let cfg = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let q = Query::join(
            vec![big, dim, extra],
            vec![
                JoinPred::new(ColRef::new(big, 1), ColRef::new(dim, 0)),
                JoinPred::new(ColRef::new(dim, 1), ColRef::new(extra, 0)),
            ],
            vec![],
        );
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.root.tables().len(), 3);
    }

    #[test]
    fn inl_join_chosen_when_enabled_and_beneficial() {
        let (db, big, dim) = db();
        let mut cfg = PhysicalConfig::new();
        // Index the big table's fk column: with a selective filter on
        // dim, probing big through the index beats hashing all of big.
        let fk = ColRef::new(big, 1);
        cfg.create_index(&db, fk, IndexOrigin::Online);
        let q = Query::join(
            vec![big, dim],
            vec![JoinPred::new(fk, ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 0), 7i64)],
        );
        let plain = Optimizer::new(&db).optimize(&q, IndexSetView::real(&cfg));
        assert!(
            !matches!(plain.root, PlanNode::IndexNlJoin { .. }),
            "INLJ must be off by default"
        );
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: true });
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(
            matches!(plan.root, PlanNode::IndexNlJoin { .. }),
            "expected INLJ, got: {}",
            plan.explain()
        );
        assert!(plan.est_cost() < plain.est_cost());
        assert!(plan.used_indices().contains(&fk));
    }

    #[test]
    fn inl_join_not_chosen_without_index() {
        let (db, big, dim) = db();
        let cfg = PhysicalConfig::new();
        let opt = Optimizer::with_options(&db, OptimizerOptions { enable_index_nl_join: true });
        let q = Query::join(
            vec![big, dim],
            vec![JoinPred::new(ColRef::new(big, 1), ColRef::new(dim, 0))],
            vec![SelPred::eq(ColRef::new(dim, 0), 7i64)],
        );
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert!(!matches!(plan.root, PlanNode::IndexNlJoin { .. }));
    }

    #[test]
    fn cartesian_product_as_last_resort() {
        let (db, big, dim) = db();
        let cfg = PhysicalConfig::new();
        let opt = Optimizer::new(&db);
        let q = Query::join(vec![big, dim], vec![], vec![]);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        assert_eq!(plan.root.tables().len(), 2);
        assert!(plan.est_cost().is_finite());
    }
}
