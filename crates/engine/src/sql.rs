//! A small SQL front end for the engine.
//!
//! Covers exactly the query surface of the reproduction — conjunctive
//! select-project-join with optional aggregation:
//!
//! ```sql
//! SELECT * FROM lineitem0 WHERE l_shipdate BETWEEN 100 AND 130
//! SELECT COUNT(*), AVG(o_totalprice)
//!   FROM orders0, customer0
//!  WHERE o_custkey = c_custkey AND c_mktsegment = 2
//!  GROUP BY c_nationkey
//! ```
//!
//! Names are resolved against the catalog: unqualified columns must be
//! unambiguous among the `FROM` tables. Numeric literals are coerced to
//! the column's type (`Int`, `Float`, or `Date`); strings use single
//! quotes. Predicates may be `=`, `<`, `<=`, `>`, `>=`,
//! `BETWEEN … AND …`, or `IN (…)`; `col = col` between two different
//! tables is an equi-join.

use crate::aggregate::{AggExpr, AggFunc, AggSpec};
use crate::query::{JoinPred, PredicateKind, Query, RangeBound, SelPred};
use colt_catalog::{ColRef, Database, TableId};
use colt_storage::{Value, ValueType};
use std::fmt;

/// A parsed statement: the SPJ core plus optional aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The select-project-join query.
    pub query: Query,
    /// Aggregation, when the select list is not `*`.
    pub agg: Option<AggSpec>,
}

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(ParseError(msg.into()))
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Star,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '.' => {
                chars.next();
                out.push(Tok::Dot);
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Le);
                } else {
                    out.push(Tok::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Ge);
                } else {
                    out.push(Tok::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return err("unterminated string literal"),
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Number(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    db: &'a Database,
    toks: Vec<Tok>,
    pos: usize,
    tables: Vec<TableId>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            err(format!("expected {kw} at token {:?}", self.peek()))
        }
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => err(format!("expected {t:?}, found {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => err(format!("expected identifier, found {other:?}")),
        }
    }

    /// A column reference: `name` or `table.name`, resolved against the
    /// FROM tables.
    fn column(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let col = self.ident()?;
            let table = self
                .db
                .table_by_name(&first)
                .ok_or_else(|| ParseError(format!("unknown table {first}")))?;
            if !self.tables.contains(&table.id) {
                return err(format!("table {first} is not in FROM"));
            }
            let idx = table
                .schema
                .column_index(&col)
                .ok_or_else(|| ParseError(format!("unknown column {first}.{col}")))?;
            return Ok(ColRef::new(table.id, idx));
        }
        // Unqualified: must be unambiguous among the FROM tables.
        let mut found = None;
        for &tid in &self.tables {
            if let Some(idx) = self.db.table(tid).schema.column_index(&first) {
                if found.is_some() {
                    return err(format!("ambiguous column {first}"));
                }
                found = Some(ColRef::new(tid, idx));
            }
        }
        found.ok_or_else(|| ParseError(format!("unknown column {first}")))
    }

    /// Is the upcoming token sequence a column reference (vs a literal)?
    fn looking_at_column(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("and"))
    }

    /// A literal, coerced to the type of `col`.
    fn literal(&mut self, col: ColRef) -> Result<Value> {
        let vtype = self.db.table(col.table).schema.columns[col.column as usize].vtype;
        match self.next() {
            Some(Tok::Number(n)) => match vtype {
                ValueType::Int => n
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| ParseError(format!("bad integer literal {n}"))),
                ValueType::Float => n
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| ParseError(format!("bad float literal {n}"))),
                ValueType::Date => n
                    .parse::<i32>()
                    .map(Value::Date)
                    .map_err(|_| ParseError(format!("bad date literal {n}"))),
                ValueType::Str => err(format!("column expects a string, found number {n}")),
            },
            Some(Tok::Str(s)) => {
                if vtype == ValueType::Str {
                    Ok(Value::Str(s))
                } else {
                    err(format!("column expects {vtype}, found string"))
                }
            }
            other => err(format!("expected literal, found {other:?}")),
        }
    }

    /// One WHERE conjunct: a join predicate or a selection.
    fn conjunct(&mut self, joins: &mut Vec<JoinPred>, sels: &mut Vec<SelPred>) -> Result<()> {
        let col = self.column()?;
        // IN (v1, v2, …)
        if self.keyword("in") {
            self.expect(Tok::LParen)?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal(col)?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
            if values.is_empty() {
                return err("empty IN list");
            }
            sels.push(SelPred::is_in(col, values));
            return Ok(());
        }
        // BETWEEN lo AND hi
        if self.keyword("between") {
            let lo = self.literal(col)?;
            self.expect_keyword("and")?;
            let hi = self.literal(col)?;
            sels.push(SelPred {
                col,
                kind: PredicateKind::Range {
                    lo: Some(RangeBound { value: lo, inclusive: true }),
                    hi: Some(RangeBound { value: hi, inclusive: true }),
                },
            });
            return Ok(());
        }
        let op = self
            .next()
            .ok_or_else(|| ParseError("expected comparison operator".into()))?;
        match op {
            Tok::Eq => {
                if self.looking_at_column() {
                    let other = self.column()?;
                    if other.table == col.table {
                        return err("self-join predicates are out of scope");
                    }
                    joins.push(JoinPred::new(col, other));
                } else {
                    let v = self.literal(col)?;
                    sels.push(SelPred { col, kind: PredicateKind::Eq(v) });
                }
            }
            Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => {
                let v = self.literal(col)?;
                let inclusive = matches!(op, Tok::Le | Tok::Ge);
                let bound = Some(RangeBound { value: v, inclusive });
                let kind = if matches!(op, Tok::Lt | Tok::Le) {
                    PredicateKind::Range { lo: None, hi: bound }
                } else {
                    PredicateKind::Range { lo: bound, hi: None }
                };
                sels.push(SelPred { col, kind });
            }
            other => return err(format!("unsupported operator {other:?}")),
        }
        Ok(())
    }

}

/// Parse one statement against a database catalog.
///
/// # Examples
///
/// ```
/// use colt_catalog::{Column, Database, TableSchema};
/// use colt_storage::{row_from, Value, ValueType};
///
/// let mut db = Database::new();
/// let t = db.add_table(TableSchema::new(
///     "orders",
///     vec![Column::new("o_id", ValueType::Int), Column::new("o_total", ValueType::Float)],
/// ));
/// db.insert_rows(t, (0..100i64).map(|i| row_from(vec![Value::Int(i), Value::Float(i as f64)])));
/// db.analyze_all();
///
/// let parsed = colt_engine::parse_sql(
///     &db,
///     "SELECT COUNT(*) FROM orders WHERE o_total BETWEEN 10 AND 20",
/// ).unwrap();
/// assert_eq!(parsed.query.selections.len(), 1);
/// assert!(parsed.agg.is_some());
/// assert!(colt_engine::parse_sql(&db, "SELECT * FROM nonexistent").is_err());
/// ```
pub fn parse(db: &Database, sql: &str) -> Result<ParsedQuery> {
    let toks = lex(sql)?;
    let mut p = Parser { db, toks, pos: 0, tables: Vec::new() };
    p.expect_keyword("select")?;

    // Select list: either `*` or aggregate calls. Aggregate column
    // arguments can only be resolved once FROM is known, so stash the
    // token range and re-parse after.
    let select_start = p.pos;
    let star = p.peek() == Some(&Tok::Star);
    // Skip ahead to FROM.
    while !matches!(p.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("from")) {
        if p.next().is_none() {
            return err("expected FROM");
        }
    }
    let select_end = p.pos;
    p.expect_keyword("from")?;

    // FROM list.
    loop {
        let name = p.ident()?;
        let table =
            db.table_by_name(&name).ok_or_else(|| ParseError(format!("unknown table {name}")))?;
        if p.tables.contains(&table.id) {
            return err(format!("duplicate table {name}"));
        }
        p.tables.push(table.id);
        if p.peek() == Some(&Tok::Comma) {
            p.pos += 1;
        } else {
            break;
        }
    }

    // WHERE.
    let mut joins = Vec::new();
    let mut sels = Vec::new();
    if p.keyword("where") {
        loop {
            p.conjunct(&mut joins, &mut sels)?;
            if !p.keyword("and") {
                break;
            }
        }
    }

    // GROUP BY.
    let mut group_by = Vec::new();
    if p.keyword("group") {
        p.expect_keyword("by")?;
        loop {
            group_by.push(p.column()?);
            if p.peek() == Some(&Tok::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    if p.pos != p.toks.len() {
        return err(format!("trailing tokens at {:?}", p.peek()));
    }

    // Second pass over the select list with tables known.
    let agg = if star {
        if !group_by.is_empty() {
            return err("GROUP BY requires an aggregate select list");
        }
        None
    } else {
        let saved = std::mem::replace(&mut p.pos, select_start);
        let mut exprs = Vec::new();
        loop {
            let name = p.ident()?;
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                "avg" => AggFunc::Avg,
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                other => return err(format!("unknown aggregate {other}")),
            };
            p.expect(Tok::LParen)?;
            if p.peek() == Some(&Tok::Star) {
                if func != AggFunc::Count {
                    return err("only COUNT may take *");
                }
                p.pos += 1;
                exprs.push(AggExpr::count_star());
            } else {
                let col = p.column()?;
                exprs.push(AggExpr::over(func, col));
            }
            p.expect(Tok::RParen)?;
            if p.peek() == Some(&Tok::Comma) && p.pos + 1 < select_end {
                p.pos += 1;
            } else {
                break;
            }
        }
        if p.pos != select_end {
            return err("malformed select list");
        }
        p.pos = saved;
        Some(AggSpec { group_by, exprs })
    };

    let query = Query { tables: p.tables.clone(), joins, selections: sels };
    query.validate().map_err(ParseError)?;
    Ok(ParsedQuery { query, agg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableSchema};
    use colt_storage::row_from;

    fn db() -> Database {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "orders",
            vec![
                Column::new("o_id", ValueType::Int),
                Column::new("o_custkey", ValueType::Int),
                Column::new("o_total", ValueType::Float),
                Column::new("o_date", ValueType::Date),
            ],
        ));
        let b = db.add_table(TableSchema::new(
            "customer",
            vec![Column::new("c_id", ValueType::Int), Column::new("c_name", ValueType::Str)],
        ));
        db.insert_rows(
            a,
            (0..100i64).map(|i| {
                row_from(vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Float(i as f64),
                    Value::Date(i as i32),
                ])
            }),
        );
        db.insert_rows(
            b,
            (0..10i64).map(|i| row_from(vec![Value::Int(i), Value::Str(format!("c{i}"))])),
        );
        db.analyze_all();
        db
    }

    #[test]
    fn select_star_with_filters() {
        let db = db();
        let p = parse(&db, "SELECT * FROM orders WHERE o_id = 5").unwrap();
        assert!(p.agg.is_none());
        assert_eq!(p.query.tables.len(), 1);
        assert_eq!(p.query.selections.len(), 1);
        assert_eq!(p.query.selections[0].kind, PredicateKind::Eq(Value::Int(5)));
    }

    #[test]
    fn between_and_inequalities() {
        let db = db();
        let p = parse(
            &db,
            "select * from orders where o_date between 10 and 20 and o_total >= 5.5 and o_id < 90",
        )
        .unwrap();
        assert_eq!(p.query.selections.len(), 3);
        // Date coercion.
        let PredicateKind::Range { lo: Some(lo), hi: Some(hi) } = &p.query.selections[0].kind
        else {
            panic!("expected range");
        };
        assert_eq!(lo.value, Value::Date(10));
        assert_eq!(hi.value, Value::Date(20));
        // Float coercion + inclusivity.
        let PredicateKind::Range { lo: Some(lo), hi: None } = &p.query.selections[1].kind else {
            panic!("expected ge");
        };
        assert_eq!(lo.value, Value::Float(5.5));
        assert!(lo.inclusive);
        let PredicateKind::Range { lo: None, hi: Some(hi) } = &p.query.selections[2].kind else {
            panic!("expected lt");
        };
        assert!(!hi.inclusive);
    }

    #[test]
    fn join_and_qualified_names() {
        let db = db();
        let p = parse(
            &db,
            "SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_id AND c_name = 'c3'",
        )
        .unwrap();
        assert_eq!(p.query.joins.len(), 1);
        assert_eq!(p.query.selections.len(), 1);
        assert_eq!(p.query.selections[0].kind, PredicateKind::Eq(Value::Str("c3".into())));
    }

    #[test]
    fn in_lists_parse_and_execute() {
        use crate::optimizer::{IndexSetView, Optimizer};
        use crate::{Collect, Executor};
        use colt_catalog::PhysicalConfig;
        let db = db();
        let p = parse(&db, "SELECT * FROM orders WHERE o_custkey IN (1, 3, 5)").unwrap();
        let PredicateKind::In(vs) = &p.query.selections[0].kind else { panic!() };
        assert_eq!(vs.len(), 3);
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&p.query, IndexSetView::real(&cfg));
        let res =
            Executor::new(&db, &cfg).execute(&p.query, &plan, Collect::CountOnly).unwrap();
        assert_eq!(res.row_count(), 30, "3 of 10 customers × 10 orders each");
    }

    #[test]
    fn aggregates_and_group_by() {
        let db = db();
        let p = parse(
            &db,
            "SELECT COUNT(*), SUM(o_total), MAX(o_date) FROM orders GROUP BY o_custkey",
        )
        .unwrap();
        let agg = p.agg.unwrap();
        assert_eq!(agg.exprs.len(), 3);
        assert_eq!(agg.exprs[0], AggExpr::count_star());
        assert_eq!(agg.exprs[1].func, AggFunc::Sum);
        assert_eq!(agg.group_by.len(), 1);
    }

    #[test]
    fn errors_are_informative() {
        let db = db();
        let cases = [
            ("SELECT * FROM nope", "unknown table"),
            ("SELECT * FROM orders WHERE nope = 1", "unknown column"),
            ("SELECT * FROM orders WHERE o_id = 'x'", "expects"),
            ("SELECT * FROM orders, customer WHERE o_id = 1 trailing", "trailing"),
            ("SELECT MEDIAN(o_id) FROM orders", "unknown aggregate"),
            ("SELECT SUM(*) FROM orders", "only COUNT"),
            ("SELECT * FROM orders GROUP BY o_id", "GROUP BY requires"),
            ("SELECT * FROM orders, orders", "duplicate table"),
        ];
        for (sql, needle) in cases {
            let e = parse(&db, sql).unwrap_err();
            assert!(e.0.contains(needle), "{sql}: {e}");
        }
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let mut db = db();
        let t = db.add_table(TableSchema::new(
            "orders2",
            vec![Column::new("o_id", ValueType::Int)],
        ));
        db.insert_rows(t, (0..5i64).map(|i| row_from(vec![Value::Int(i)])));
        db.analyze_all();
        let e = parse(&db, "SELECT * FROM orders, orders2 WHERE o_id = 1").unwrap_err();
        assert!(e.0.contains("ambiguous"), "{e}");
    }

    #[test]
    fn end_to_end_execute_parsed_query() {
        use crate::optimizer::{IndexSetView, Optimizer};
        use crate::Executor;
        use colt_catalog::PhysicalConfig;
        let db = db();
        let p = parse(
            &db,
            "SELECT COUNT(*), MIN(o_total) FROM orders WHERE o_custkey = 3 GROUP BY o_custkey",
        )
        .unwrap();
        let cfg = PhysicalConfig::new();
        let plan = Optimizer::new(&db).optimize(&p.query, IndexSetView::real(&cfg));
        let (_, rows) =
            Executor::new(&db, &cfg).execute_aggregate(&p.query, &plan, &p.agg.unwrap()).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(10), Value::Float(3.0)]]);
    }
}
