//! System-R style cost formulas shared by the optimizer and COLT's crude
//! benefit estimator.
//!
//! Costs are expressed in the same abstract cost units as
//! [`colt_storage::CostParams`], so optimizer estimates and executor
//! charges are directly comparable.

use colt_catalog::IndexEstimate;
use colt_storage::CostParams;

/// Cost of a full sequential scan over `pages` pages producing `rows`
/// tuples, with `preds` predicates evaluated per tuple.
pub fn seq_scan_cost(params: &CostParams, pages: f64, rows: f64, preds: usize) -> f64 {
    params.seq_page_cost * pages
        + params.cpu_tuple_cost * rows
        + params.cpu_operator_cost * rows * preds as f64
}

/// Expected number of distinct heap pages touched when fetching `matches`
/// uniformly distributed rows from a heap of `pages` pages (Yao's
/// approximation). This mirrors the executor's bitmap-style sorted fetch,
/// which deduplicates page accesses.
pub fn heap_pages_fetched(matches: f64, pages: f64) -> f64 {
    if pages <= 0.0 || matches <= 0.0 {
        return 0.0;
    }
    // pages * (1 - (1 - 1/pages)^matches), computed stably.
    let frac = if pages < 1.5 {
        1.0
    } else {
        1.0 - ((1.0 - 1.0 / pages).ln() * matches).exp()
    };
    (pages * frac).min(matches).max(1.0)
}

/// Cost of an index scan that selects a `selectivity` fraction of
/// `table_rows` rows from a heap of `table_pages` pages through an index
/// of the given estimated shape, then applies `residual_preds` remaining
/// predicates to each fetched row.
pub fn index_scan_cost(
    params: &CostParams,
    index: &IndexEstimate,
    selectivity: f64,
    table_rows: f64,
    table_pages: f64,
    residual_preds: usize,
) -> f64 {
    let matches = (selectivity * table_rows).max(0.0);
    // Descent: one random page per level.
    let descent = params.random_page_cost * index.height as f64;
    // Leaf chain: the first leaf is part of the descent; additional
    // leaves are sequential.
    let leaves = (selectivity * index.leaf_pages as f64).ceil().max(1.0) - 1.0;
    let leaf_cost = params.seq_page_cost * leaves;
    // Heap fetches: sorted + deduplicated, so distinct pages only.
    let heap = params.random_page_cost * heap_pages_fetched(matches, table_pages);
    let cpu = params.cpu_tuple_cost * matches
        + params.cpu_operator_cost * matches * (1 + residual_preds) as f64;
    descent + leaf_cost + heap + cpu
}

/// Cost of building a hash table over `build_rows` rows and probing it
/// with `probe_rows` rows, emitting `out_rows` rows.
pub fn hash_join_cost(params: &CostParams, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
    params.cpu_operator_cost * (2.0 * build_rows + probe_rows)
        + params.cpu_tuple_cost * out_rows
}

/// Cost of an index nested-loop join: one B+ tree descent per outer
/// row, plus the heap fetches of the matching inner rows (deduplicated
/// per probe) and per-row CPU for residual predicates.
pub fn index_nl_join_cost(
    params: &CostParams,
    outer_rows: f64,
    inner_index: &IndexEstimate,
    matches_per_probe: f64,
    inner_pages: f64,
    residual_preds: usize,
) -> f64 {
    let probes = outer_rows.max(0.0);
    let descent = params.random_page_cost * inner_index.height as f64;
    let heap = params.random_page_cost * heap_pages_fetched(matches_per_probe, inner_pages);
    let cpu = params.cpu_tuple_cost * matches_per_probe
        + params.cpu_operator_cost * matches_per_probe * (1 + residual_preds) as f64;
    probes * (descent + heap + cpu)
}

/// Crude single-predicate gain estimate `Δcost(R, σ, I)` used for
/// `BenefitC` (paper §4.1): the difference between evaluating σ with a
/// sequential scan of R versus an index scan through I, using standard
/// cost formulas. Optimistic by design — its only job is to rank raw
/// candidates for promotion into the hot set.
pub fn delta_cost(
    params: &CostParams,
    index: &IndexEstimate,
    selectivity: f64,
    table_rows: f64,
    table_pages: f64,
) -> f64 {
    let seq = seq_scan_cost(params, table_pages, table_rows, 1);
    let idx = index_scan_cost(params, index, selectivity, table_rows, table_pages, 0);
    (seq - idx).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn seq_scan_scales_with_pages_and_rows() {
        let p = params();
        let small = seq_scan_cost(&p, 10.0, 640.0, 1);
        let large = seq_scan_cost(&p, 100.0, 6400.0, 1);
        assert!(large > small * 9.0);
    }

    #[test]
    fn yao_formula_bounds() {
        assert_eq!(heap_pages_fetched(0.0, 100.0), 0.0);
        // One match touches one page.
        assert!((heap_pages_fetched(1.0, 100.0) - 1.0).abs() < 0.01);
        // Many more matches than pages: every page touched.
        assert!((heap_pages_fetched(1e6, 100.0) - 100.0).abs() < 1e-6);
        // Never more pages than matches.
        assert!(heap_pages_fetched(5.0, 1000.0) <= 5.0);
        // Monotone in matches.
        assert!(heap_pages_fetched(50.0, 100.0) < heap_pages_fetched(500.0, 100.0));
    }

    #[test]
    fn index_scan_beats_seq_scan_when_selective() {
        let p = params();
        let est = IndexEstimate::for_table(1_000_000, 8);
        let rows = 1_000_000.0;
        let pages = 16_000.0;
        let selective = index_scan_cost(&p, &est, 0.001, rows, pages, 0);
        let seq = seq_scan_cost(&p, pages, rows, 1);
        assert!(selective < seq, "selective index scan {selective} vs seq {seq}");
    }

    #[test]
    fn seq_scan_beats_index_scan_when_unselective() {
        let p = params();
        let est = IndexEstimate::for_table(1_000_000, 8);
        let rows = 1_000_000.0;
        let pages = 16_000.0;
        let unselective = index_scan_cost(&p, &est, 0.5, rows, pages, 0);
        let seq = seq_scan_cost(&p, pages, rows, 1);
        assert!(unselective > seq, "unselective index scan {unselective} vs seq {seq}");
    }

    #[test]
    fn crossover_exists_between_selectivities() {
        // There must be a selectivity where the winner flips — the paper's
        // 0–2% "selective" bucket is meant to straddle it.
        let p = params();
        let est = IndexEstimate::for_table(100_000, 8);
        let rows = 100_000.0;
        let pages = 1_600.0;
        let seq = seq_scan_cost(&p, pages, rows, 1);
        let idx_at = |s: f64| index_scan_cost(&p, &est, s, rows, pages, 0);
        assert!(idx_at(0.0005) < seq);
        assert!(idx_at(0.9) > seq);
    }

    #[test]
    fn delta_cost_nonnegative_and_monotone() {
        let p = params();
        let est = IndexEstimate::for_table(100_000, 8);
        let d_sel = delta_cost(&p, &est, 0.001, 100_000.0, 1600.0);
        let d_unsel = delta_cost(&p, &est, 0.9, 100_000.0, 1600.0);
        assert!(d_sel > 0.0);
        assert_eq!(d_unsel, 0.0, "no gain clamped at zero");
    }

    #[test]
    fn inl_join_scales_with_outer_and_beats_hash_when_outer_small() {
        let p = params();
        let est = IndexEstimate::for_table(1_000_000, 8);
        // Few outer rows: probing a large inner through the index is far
        // cheaper than building a hash table over the whole inner.
        let inl = index_nl_join_cost(&p, 10.0, &est, 2.0, 16_000.0, 0);
        let hash = hash_join_cost(&p, 1_000_000.0, 10.0, 20.0)
            + seq_scan_cost(&p, 16_000.0, 1_000_000.0, 0);
        assert!(inl < hash, "inl {inl} vs hash+scan {hash}");
        // Cost is linear in outer rows.
        let inl2 = index_nl_join_cost(&p, 20.0, &est, 2.0, 16_000.0, 0);
        assert!((inl2 / inl - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hash_join_cost_linear() {
        let p = params();
        let c1 = hash_join_cost(&p, 1000.0, 1000.0, 100.0);
        let c2 = hash_join_cost(&p, 2000.0, 2000.0, 200.0);
        assert!((c2 / c1 - 2.0).abs() < 1e-9);
    }
}
