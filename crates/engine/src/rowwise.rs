//! Row-at-a-time reference executor.
//!
//! The straight-line tuple-at-a-time implementation the vectorized
//! executor replaced, kept as an executable specification: it shares
//! the rowid-collection helpers (and therefore the exact `IoStats`
//! charges) with [`crate::executor::Executor`], but processes one
//! row-major `Vec<Value>` at a time with no batching, no selection
//! vectors, and no late materialization. The engine property tests
//! assert both executors produce identical results, charges, and row
//! order on random queries; `exec_gate` measures the speedup of the
//! batch path against this one.
//!
//! Deliberately *not* instrumented: no `colt_obs` counters or spans, so
//! running the reference never perturbs observability snapshots the
//! exhibits assert on.

use crate::aggregate::{Acc, AggSpec};
use crate::batch::TableLayout;
use crate::error::ExecError;
use crate::executor::{
    check_pred_cols, composite_scan_rowids, index_scan_rowids, materialized_index, Collect,
    ExecOutput, QueryResult,
};
use crate::plan::{AccessPath, Plan, PlanNode};
use crate::query::{Query, SelPred};
use colt_catalog::{ColRef, Database, PhysicalConfig, TableId};
use colt_storage::{IoStats, Value};
use std::collections::{BTreeMap, HashMap};

/// Rows flowing between operators: the source table of each column slice
/// is tracked so join keys can be located.
struct Batch {
    tables: Vec<TableId>,
    rows: Vec<Vec<Value>>,
}

/// The reference executor. Same public surface as
/// [`crate::executor::Executor`], tuple-at-a-time inside.
#[derive(Debug, Clone, Copy)]
pub struct RowwiseExecutor<'a> {
    db: &'a Database,
    config: &'a PhysicalConfig,
}

impl<'a> RowwiseExecutor<'a> {
    /// Create a reference executor over a database and configuration.
    pub fn new(db: &'a Database, config: &'a PhysicalConfig) -> Self {
        RowwiseExecutor { db, config }
    }

    /// Execute a plan row-at-a-time. Unlike the vectorized executor,
    /// rows are always materialized internally; `collect` only controls
    /// whether they are returned.
    pub fn execute(
        &self,
        query: &Query,
        plan: &Plan,
        collect: Collect,
    ) -> Result<ExecOutput, ExecError> {
        let mut io = IoStats::new();
        let batch = self.run(query, &plan.root, &mut io)?;
        let millis = self.db.cost.millis_of(&io);
        Ok(ExecOutput {
            result: QueryResult { row_count: batch.rows.len() as u64, millis, io },
            rows: if collect == Collect::Rows { batch.rows } else { Vec::new() },
            layout: batch.tables,
        })
    }

    /// Aggregate a plan's result per `spec`, row-at-a-time. Mirrors
    /// [`crate::executor::Executor::execute_aggregate`] exactly.
    pub fn execute_aggregate(
        &self,
        query: &Query,
        plan: &Plan,
        spec: &AggSpec,
    ) -> Result<(QueryResult, Vec<Vec<Value>>), ExecError> {
        let mut io = IoStats::new();
        let batch = self.run(query, &plan.root, &mut io)?;
        let layout = TableLayout::of_tables(self.db, &batch.tables);
        let resolve = |c: ColRef| -> Result<usize, ExecError> {
            let pos =
                layout.col_of(c).ok_or(ExecError::UnknownColRef { operator: "aggregate", col: c })?;
            if c.column as usize >= self.db.table(c.table).schema.arity() {
                return Err(ExecError::UnknownColRef { operator: "aggregate", col: c });
            }
            Ok(pos)
        };
        let group_pos: Vec<usize> =
            spec.group_by.iter().map(|&c| resolve(c)).collect::<Result<_, ExecError>>()?;
        let agg_pos: Vec<Option<usize>> = spec
            .exprs
            .iter()
            .map(|e| e.col.map(resolve).transpose())
            .collect::<Result<_, ExecError>>()?;

        let mut groups: BTreeMap<Vec<Value>, Vec<Acc>> = BTreeMap::new();
        if spec.group_by.is_empty() {
            groups.insert(Vec::new(), spec.exprs.iter().map(|e| Acc::new(e.func)).collect());
        }
        for row in &batch.rows {
            let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| spec.exprs.iter().map(|e| Acc::new(e.func)).collect());
            for (acc, pos) in accs.iter_mut().zip(&agg_pos) {
                acc.feed(pos.map(|p| &row[p]));
            }
            io.cpu_ops += spec.exprs.len() as u64 + 1;
        }
        let out: Vec<Vec<Value>> = groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.into_iter().map(Acc::finish));
                key
            })
            .collect();
        Ok((
            QueryResult {
                row_count: out.len() as u64,
                millis: self.db.cost.millis_of(&io),
                io,
            },
            out,
        ))
    }

    fn run(&self, query: &Query, node: &PlanNode, io: &mut IoStats) -> Result<Batch, ExecError> {
        match node {
            PlanNode::Scan { table, path, .. } => self.run_scan(query, *table, path, io),
            PlanNode::HashJoin { build, probe, on, .. } => {
                let b = self.run(query, build, io)?;
                let p = self.run(query, probe, io)?;
                self.hash_join(b, p, on, io)
            }
            PlanNode::IndexNlJoin { outer, inner, index, probe_on, residual_on, .. } => {
                let o = self.run(query, outer, io)?;
                self.index_nl_join(query, o, *inner, *index, *probe_on, residual_on, io)
            }
        }
    }

    fn run_scan(
        &self,
        query: &Query,
        table: TableId,
        path: &AccessPath,
        io: &mut IoStats,
    ) -> Result<Batch, ExecError> {
        let t = self.db.table(table);
        let preds: Vec<&SelPred> = query.selections_on(table).collect();
        check_pred_cols("scan", &preds, t.schema.arity())?;
        let rows: Vec<Vec<Value>> = match path {
            AccessPath::SeqScan => t
                .heap
                .scan(io)
                .filter(|(_, row)| {
                    io.cpu_ops += preds.len() as u64;
                    preds.iter().all(|p| p.matches(&row[p.col.column as usize]))
                })
                .map(|(_, row)| row.to_vec())
                .collect(),
            AccessPath::CompositeScan { key, eq_prefix, range_next } => {
                let mut rowids =
                    composite_scan_rowids(self.config, &preds, key, *eq_prefix, *range_next, io)?;
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                fetched
                    .into_iter()
                    .filter(|row| {
                        io.cpu_ops += preds.len() as u64;
                        preds.iter().all(|p| p.matches(&row[p.col.column as usize]))
                    })
                    .map(|row| row.to_vec())
                    .collect()
            }
            AccessPath::IndexScan { col } => {
                let (mut rowids, driver_idx) = index_scan_rowids(self.config, &preds, *col, io)?;
                let fetched = t.heap.fetch_sorted(&mut rowids, io);
                fetched
                    .into_iter()
                    .filter(|row| {
                        io.cpu_ops += preds.len() as u64 - 1;
                        preds
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != driver_idx)
                            .all(|(_, p)| p.matches(&row[p.col.column as usize]))
                    })
                    .map(|row| row.to_vec())
                    .collect()
            }
        };
        Ok(Batch { tables: vec![table], rows })
    }

    fn hash_join(
        &self,
        build: Batch,
        probe: Batch,
        on: &[crate::query::JoinPred],
        io: &mut IoStats,
    ) -> Result<Batch, ExecError> {
        let locate = |batch: &Batch, side: ColRef| -> Result<usize, ExecError> {
            let layout = TableLayout::of_tables(self.db, &batch.tables);
            let pos = layout.col_of(side).ok_or(ExecError::JoinKeyTableMissing {
                operator: "hash_join",
                table: side.table,
            })?;
            if side.column as usize >= self.db.table(side.table).schema.arity() {
                return Err(ExecError::UnknownColRef { operator: "hash_join", col: side });
            }
            Ok(pos)
        };
        let key_positions = |batch: &Batch| -> Result<Vec<usize>, ExecError> {
            on.iter()
                .map(|j| {
                    let side =
                        if batch.tables.contains(&j.left.table) { j.left } else { j.right };
                    locate(batch, side)
                })
                .collect()
        };
        let build_keys = key_positions(&build)?;
        let probe_keys = key_positions(&probe)?;

        // Build phase — HashMap is point-lookup only, never iterated.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.rows.len());
        for (i, row) in build.rows.iter().enumerate() {
            let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push(i);
            io.cpu_ops += 2; // hash + insert
        }

        // Probe phase. Cartesian product when `on` is empty.
        let mut out = Vec::new();
        if on.is_empty() {
            for b in &build.rows {
                for p in &probe.rows {
                    io.cpu_ops += 1;
                    let mut row = b.clone();
                    row.extend(p.iter().cloned());
                    out.push(row);
                }
            }
        } else {
            for p in &probe.rows {
                io.cpu_ops += 1;
                let key: Vec<Value> = probe_keys.iter().map(|&k| p[k].clone()).collect();
                if let Some(matches) = table.get(&key) {
                    for &bi in matches {
                        let mut row = build.rows[bi].clone();
                        row.extend(p.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
        io.tuples += out.len() as u64;

        let mut tables = build.tables;
        tables.extend(probe.tables);
        Ok(Batch { tables, rows: out })
    }

    #[allow(clippy::too_many_arguments)]
    fn index_nl_join(
        &self,
        query: &Query,
        outer: Batch,
        inner: TableId,
        index_col: ColRef,
        probe_on: crate::query::JoinPred,
        residual_on: &[crate::query::JoinPred],
        io: &mut IoStats,
    ) -> Result<Batch, ExecError> {
        let inner_table = self.db.table(inner);
        let index = materialized_index("index_nl_join", self.config, index_col)?;
        let inner_preds: Vec<&SelPred> = query.selections_on(inner).collect();
        let inner_arity = inner_table.schema.arity();
        check_pred_cols("index_nl_join", &inner_preds, inner_arity)?;

        let outer_layout = TableLayout::of_tables(self.db, &outer.tables);
        let locate = |side: ColRef| -> Result<usize, ExecError> {
            let pos = outer_layout.col_of(side).ok_or(ExecError::JoinKeyTableMissing {
                operator: "index_nl_join",
                table: side.table,
            })?;
            if side.column as usize >= self.db.table(side.table).schema.arity() {
                return Err(ExecError::UnknownColRef { operator: "index_nl_join", col: side });
            }
            Ok(pos)
        };
        let outer_side = if probe_on.left.table == inner { probe_on.right } else { probe_on.left };
        let probe_pos = locate(outer_side)?;
        let residuals: Vec<(usize, usize)> = residual_on
            .iter()
            .map(|j| {
                let (o, i) =
                    if j.left.table == inner { (j.right, j.left) } else { (j.left, j.right) };
                if i.column as usize >= inner_arity {
                    return Err(ExecError::UnknownColRef { operator: "index_nl_join", col: i });
                }
                Ok((locate(o)?, i.column as usize))
            })
            .collect::<Result<_, ExecError>>()?;

        let mut out = Vec::new();
        for orow in &outer.rows {
            let key = &orow[probe_pos];
            let mut rowids = index.tree.lookup(key, io);
            let fetched = inner_table.heap.fetch_sorted(&mut rowids, io);
            for irow in fetched {
                io.cpu_ops += (inner_preds.len() + residuals.len()) as u64;
                let sel_ok = inner_preds.iter().all(|p| p.matches(&irow[p.col.column as usize]));
                let res_ok = residuals.iter().all(|&(op, ic)| orow[op] == irow[ic]);
                if sel_ok && res_ok {
                    let mut row = orow.clone();
                    row.extend(irow.iter().cloned());
                    out.push(row);
                }
            }
        }
        io.tuples += out.len() as u64;

        let mut tables = outer.tables;
        tables.push(inner);
        Ok(Batch { tables, rows: out })
    }
}

