//! Select-project-join query representation.
//!
//! The workloads of the paper are SPJ queries over the TPC-H-like schema:
//! a set of tables, equi-join predicates between them, and single-column
//! selection predicates (equality or range). This is exactly the query
//! shape COLT mines for candidate indices, so the AST stores predicates
//! in terms of [`ColRef`]s.

use colt_catalog::{ColRef, TableId};
use colt_storage::Value;
use std::fmt;

/// One bound of a range predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RangeBound {
    /// The bounding value.
    pub value: Value,
    /// Whether the bound itself is included.
    pub inclusive: bool,
}

/// The comparison applied by a selection predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredicateKind {
    /// `col = value`
    Eq(Value),
    /// `col IN (v1, v2, …)` — a disjunction of equalities.
    In(Vec<Value>),
    /// `lo (<|<=) col (<|<=) hi`; either side may be absent.
    Range {
        /// Lower bound, if any.
        lo: Option<RangeBound>,
        /// Upper bound, if any.
        hi: Option<RangeBound>,
    },
}

/// A single-column selection predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SelPred {
    /// The restricted column.
    pub col: ColRef,
    /// The comparison.
    pub kind: PredicateKind,
}

impl SelPred {
    /// Equality predicate `col = v`.
    pub fn eq(col: ColRef, v: impl Into<Value>) -> Self {
        SelPred {
            col,
            kind: PredicateKind::Eq(v.into()),
        }
    }

    /// Closed range predicate `lo <= col <= hi`.
    pub fn between(col: ColRef, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        SelPred {
            col,
            kind: PredicateKind::Range {
                lo: Some(RangeBound {
                    value: lo.into(),
                    inclusive: true,
                }),
                hi: Some(RangeBound {
                    value: hi.into(),
                    inclusive: true,
                }),
            },
        }
    }

    /// One-sided range `col >= lo` (inclusive).
    pub fn ge(col: ColRef, lo: impl Into<Value>) -> Self {
        SelPred {
            col,
            kind: PredicateKind::Range {
                lo: Some(RangeBound {
                    value: lo.into(),
                    inclusive: true,
                }),
                hi: None,
            },
        }
    }

    /// One-sided range `col <= hi` (inclusive).
    pub fn le(col: ColRef, hi: impl Into<Value>) -> Self {
        SelPred {
            col,
            kind: PredicateKind::Range {
                lo: None,
                hi: Some(RangeBound {
                    value: hi.into(),
                    inclusive: true,
                }),
            },
        }
    }

    /// `col IN (…)` predicate; duplicates in the list are removed.
    pub fn is_in(col: ColRef, values: Vec<Value>) -> Self {
        let mut values = values;
        values.sort();
        values.dedup();
        SelPred { col, kind: PredicateKind::In(values) }
    }

    /// Does a row value satisfy the predicate?
    pub fn matches(&self, v: &Value) -> bool {
        match &self.kind {
            PredicateKind::Eq(target) => v == target,
            PredicateKind::In(values) => values.binary_search(v).is_ok(),
            PredicateKind::Range { lo, hi } => {
                let lo_ok = lo.as_ref().is_none_or(|b| {
                    if b.inclusive {
                        v >= &b.value
                    } else {
                        v > &b.value
                    }
                });
                let hi_ok = hi.as_ref().is_none_or(|b| {
                    if b.inclusive {
                        v <= &b.value
                    } else {
                        v < &b.value
                    }
                });
                lo_ok && hi_ok
            }
        }
    }
}

/// An equi-join predicate `left = right` between columns of two tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinPred {
    /// Column of the first table.
    pub left: ColRef,
    /// Column of the second table.
    pub right: ColRef,
}

impl JoinPred {
    /// Construct a join predicate, normalizing operand order so that the
    /// smaller column reference comes first (joins are symmetric).
    pub fn new(a: ColRef, b: ColRef) -> Self {
        if a <= b {
            JoinPred { left: a, right: b }
        } else {
            JoinPred { left: b, right: a }
        }
    }

    /// The side of the join on `table`, if any.
    pub fn side_on(&self, table: TableId) -> Option<ColRef> {
        if self.left.table == table {
            Some(self.left)
        } else if self.right.table == table {
            Some(self.right)
        } else {
            None
        }
    }
}

/// A select-project-join query.
///
/// `Ord` compares the full structure — tables, joins, selections *and*
/// literal values — so a query can key deterministic ordered maps (the
/// what-if memo cache relies on this: two queries compare equal exactly
/// when the optimizer would derive identical state for them).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Query {
    /// Referenced tables (no duplicates; self-joins are out of scope, as
    /// in the paper's workloads).
    pub tables: Vec<TableId>,
    /// Equi-join predicates connecting the tables.
    pub joins: Vec<JoinPred>,
    /// Selection predicates.
    pub selections: Vec<SelPred>,
}

impl Query {
    /// Single-table query with the given selections.
    pub fn single(table: TableId, selections: Vec<SelPred>) -> Self {
        Query {
            tables: vec![table],
            joins: Vec::new(),
            selections,
        }
    }

    /// Multi-table query.
    pub fn join(tables: Vec<TableId>, joins: Vec<JoinPred>, selections: Vec<SelPred>) -> Self {
        Query {
            tables,
            joins,
            selections,
        }
    }

    /// Selections restricted to one table.
    pub fn selections_on(&self, table: TableId) -> impl Iterator<Item = &SelPred> + '_ {
        self.selections.iter().filter(move |p| p.col.table == table)
    }

    /// Join predicates touching one table.
    pub fn joins_on(&self, table: TableId) -> impl Iterator<Item = &JoinPred> + '_ {
        self.joins
            .iter()
            .filter(move |j| j.side_on(table).is_some())
    }

    /// All columns restricted by selection predicates — these are COLT's
    /// candidate indices for this query (paper §3: candidates are mined
    /// from selection predicates).
    pub fn candidate_columns(&self) -> Vec<ColRef> {
        let mut cols: Vec<ColRef> = self.selections.iter().map(|p| p.col).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Basic well-formedness: unique tables, predicates reference only
    /// listed tables, joins connect listed tables.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = self.tables.clone();
        seen.sort_unstable();
        let n_unique = {
            let mut s = seen.clone();
            s.dedup();
            s.len()
        };
        if n_unique != self.tables.len() {
            return Err("duplicate table references".into());
        }
        if self.tables.is_empty() {
            return Err("query references no tables".into());
        }
        for p in &self.selections {
            if !self.tables.contains(&p.col.table) {
                return Err(format!("selection on unlisted table {:?}", p.col.table));
            }
        }
        for j in &self.joins {
            if !self.tables.contains(&j.left.table) || !self.tables.contains(&j.right.table) {
                return Err("join touches unlisted table".into());
            }
            if j.left.table == j.right.table {
                return Err("self-join predicates are out of scope".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT * FROM ")?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "t{}", t.0)?;
        }
        if !self.joins.is_empty() || !self.selections.is_empty() {
            write!(f, " WHERE ")?;
        }
        let mut first = true;
        for j in &self.joins {
            if !first {
                write!(f, " AND ")?;
            }
            first = false;
            write!(f, "{} = {}", j.left, j.right)?;
        }
        for p in &self.selections {
            if !first {
                write!(f, " AND ")?;
            }
            first = false;
            match &p.kind {
                PredicateKind::Eq(v) => write!(f, "{} = {}", p.col, v)?,
                PredicateKind::In(vs) => {
                    write!(f, "{} IN (", p.col)?;
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, ")")?;
                }
                PredicateKind::Range { lo, hi } => {
                    match (lo, hi) {
                        (Some(l), Some(h)) => write!(
                            f,
                            "{} {} {} AND {} {} {}",
                            l.value,
                            if l.inclusive { "<=" } else { "<" },
                            p.col,
                            p.col,
                            if h.inclusive { "<=" } else { "<" },
                            h.value
                        )?,
                        (Some(l), None) => write!(
                            f,
                            "{} {} {}",
                            p.col,
                            if l.inclusive { ">=" } else { ">" },
                            l.value
                        )?,
                        (None, Some(h)) => write!(
                            f,
                            "{} {} {}",
                            p.col,
                            if h.inclusive { "<=" } else { "<" },
                            h.value
                        )?,
                        (None, None) => write!(f, "TRUE")?,
                    };
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: u32, col: u32) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    #[test]
    fn eq_predicate_matches() {
        let p = SelPred::eq(c(0, 0), 5i64);
        assert!(p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(6)));
    }

    #[test]
    fn range_predicate_bounds() {
        let p = SelPred::between(c(0, 0), 10i64, 20i64);
        assert!(p.matches(&Value::Int(10)));
        assert!(p.matches(&Value::Int(20)));
        assert!(!p.matches(&Value::Int(9)));
        assert!(!p.matches(&Value::Int(21)));

        let ge = SelPred::ge(c(0, 0), 100i64);
        assert!(ge.matches(&Value::Int(100)));
        assert!(!ge.matches(&Value::Int(99)));

        let le = SelPred::le(c(0, 0), 0i64);
        assert!(le.matches(&Value::Int(0)));
        assert!(!le.matches(&Value::Int(1)));
    }

    #[test]
    fn in_predicate_matches_and_dedups() {
        let p = SelPred::is_in(c(0, 0), vec![Value::Int(3), Value::Int(1), Value::Int(3)]);
        let PredicateKind::In(vs) = &p.kind else { panic!() };
        assert_eq!(vs.len(), 2, "deduplicated and sorted");
        assert!(p.matches(&Value::Int(1)));
        assert!(p.matches(&Value::Int(3)));
        assert!(!p.matches(&Value::Int(2)));
    }

    #[test]
    fn join_pred_normalizes_order() {
        let j1 = JoinPred::new(c(1, 0), c(0, 2));
        let j2 = JoinPred::new(c(0, 2), c(1, 0));
        assert_eq!(j1, j2);
        assert_eq!(j1.left.table, TableId(0));
        assert_eq!(j1.side_on(TableId(1)), Some(c(1, 0)));
        assert_eq!(j1.side_on(TableId(5)), None);
    }

    #[test]
    fn candidate_columns_dedup_sorted() {
        let q = Query::single(
            TableId(0),
            vec![
                SelPred::eq(c(0, 2), 1i64),
                SelPred::eq(c(0, 1), 2i64),
                SelPred::ge(c(0, 2), 0i64),
            ],
        );
        assert_eq!(q.candidate_columns(), vec![c(0, 1), c(0, 2)]);
    }

    #[test]
    fn validate_catches_malformed_queries() {
        assert!(Query::single(TableId(0), vec![]).validate().is_ok());
        let bad_sel = Query::single(TableId(0), vec![SelPred::eq(c(1, 0), 1i64)]);
        assert!(bad_sel.validate().is_err());
        let dup = Query::join(vec![TableId(0), TableId(0)], vec![], vec![]);
        assert!(dup.validate().is_err());
        let self_join = Query::join(
            vec![TableId(0), TableId(1)],
            vec![JoinPred {
                left: c(0, 0),
                right: c(0, 1),
            }],
            vec![],
        );
        assert!(self_join.validate().is_err());
        let empty = Query {
            tables: vec![],
            joins: vec![],
            selections: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn display_renders_sql_shape() {
        let q = Query::join(
            vec![TableId(0), TableId(1)],
            vec![JoinPred::new(c(0, 0), c(1, 1))],
            vec![
                SelPred::eq(c(0, 2), 7i64),
                SelPred::between(c(1, 0), 1i64, 5i64),
            ],
        );
        let s = q.to_string();
        assert!(s.contains("FROM t0, t1"), "{s}");
        assert!(s.contains("t0.c0 = t1.c1"), "{s}");
        assert!(s.contains("t0.c2 = 7"), "{s}");
    }
}
