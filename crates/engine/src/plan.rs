//! Physical plan representation.

use crate::query::JoinPred;
use colt_catalog::{ColRef, TableId};

/// How a base table is accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Full sequential scan with all predicates applied as filters.
    SeqScan,
    /// B+ tree scan using the sargable predicate on `col`; remaining
    /// predicates are applied as residual filters on fetched rows.
    IndexScan {
        /// The indexed column driving the scan.
        col: ColRef,
    },
    /// Multi-column index scan (future-work extension): a run of
    /// equality predicates pins the first `eq_prefix` columns of the
    /// composite, optionally followed by one range predicate on the
    /// next column.
    CompositeScan {
        /// The composite index identity.
        key: colt_catalog::CompositeKey,
        /// Number of leading columns pinned by equality.
        eq_prefix: u32,
        /// Whether a range predicate on column `eq_prefix` also drives
        /// the scan.
        range_next: bool,
    },
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base-table access.
    Scan {
        /// The scanned table.
        table: TableId,
        /// Chosen access path.
        path: AccessPath,
        /// Estimated output rows (after all predicates on the table).
        est_rows: f64,
        /// Estimated cost of this node in cost units.
        est_cost: f64,
    },
    /// In-memory hash join of two inputs on equi-join predicates.
    HashJoin {
        /// Build side (smaller estimated input).
        build: Box<PlanNode>,
        /// Probe side.
        probe: Box<PlanNode>,
        /// Join predicates evaluated by this node.
        on: Vec<JoinPred>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost (inputs + this join).
        est_cost: f64,
    },
    /// Index nested-loop join: for every outer row, probe a B+ tree on
    /// the inner table's join column and fetch the matching rows.
    /// Available only when [`crate::optimizer::OptimizerOptions`] enables
    /// it (an engine extension beyond the paper's experiments).
    IndexNlJoin {
        /// Outer input (any subtree).
        outer: Box<PlanNode>,
        /// Inner base table, accessed through the index.
        inner: colt_catalog::TableId,
        /// Indexed inner join column driving the probes.
        index: ColRef,
        /// The join predicate served by the index probe.
        probe_on: JoinPred,
        /// Further join predicates applied as residual filters.
        residual_on: Vec<JoinPred>,
        /// Estimated output rows.
        est_rows: f64,
        /// Estimated cumulative cost (outer + probes).
        est_cost: f64,
    },
}

impl PlanNode {
    /// Estimated cumulative cost of the subtree.
    pub fn est_cost(&self) -> f64 {
        match self {
            PlanNode::Scan { est_cost, .. }
            | PlanNode::HashJoin { est_cost, .. }
            | PlanNode::IndexNlJoin { est_cost, .. } => *est_cost,
        }
    }

    /// Estimated output cardinality of the subtree.
    pub fn est_rows(&self) -> f64 {
        match self {
            PlanNode::Scan { est_rows, .. }
            | PlanNode::HashJoin { est_rows, .. }
            | PlanNode::IndexNlJoin { est_rows, .. } => *est_rows,
        }
    }

    /// Tables covered by the subtree.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            PlanNode::Scan { table, .. } => vec![*table],
            PlanNode::HashJoin { build, probe, .. } => {
                let mut t = build.tables();
                t.extend(probe.tables());
                t.sort_unstable();
                t
            }
            PlanNode::IndexNlJoin { outer, inner, .. } => {
                let mut t = outer.tables();
                t.push(*inner);
                t.sort_unstable();
                t
            }
        }
    }

    /// Indices used anywhere in the subtree (for the paper's `u_{q,I}`
    /// indicator: whether the optimizer chose index `I` for query `q`).
    pub fn used_indices(&self) -> Vec<ColRef> {
        let mut out = Vec::new();
        self.collect_indices(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_seq_scans(&self, out: &mut Vec<TableId>) {
        match self {
            PlanNode::Scan { table, path: AccessPath::SeqScan, .. } => out.push(*table),
            PlanNode::Scan { .. } => {}
            PlanNode::HashJoin { build, probe, .. } => {
                build.collect_seq_scans(out);
                probe.collect_seq_scans(out);
            }
            PlanNode::IndexNlJoin { outer, .. } => outer.collect_seq_scans(out),
        }
    }

    fn collect_indices(&self, out: &mut Vec<ColRef>) {
        match self {
            PlanNode::Scan { path: AccessPath::IndexScan { col }, .. } => out.push(*col),
            PlanNode::Scan { .. } => {}
            PlanNode::HashJoin { build, probe, .. } => {
                build.collect_indices(out);
                probe.collect_indices(out);
            }
            PlanNode::IndexNlJoin { outer, index, .. } => {
                out.push(*index);
                outer.collect_indices(out);
            }
        }
    }

    /// Render an EXPLAIN-style tree, one node per line.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::Scan { table, path, est_rows, est_cost } => {
                let p = match path {
                    AccessPath::SeqScan => "SeqScan".to_string(),
                    AccessPath::IndexScan { col } => format!("IndexScan[{col}]"),
                    AccessPath::CompositeScan { key, eq_prefix, range_next } => {
                        format!("CompositeScan[{key} eq={eq_prefix} range={range_next}]")
                    }
                };
                out.push_str(&format!(
                    "{pad}{p} t{} (rows={est_rows:.1} cost={est_cost:.1})\n",
                    table.0
                ));
            }
            PlanNode::HashJoin { build, probe, on, est_rows, est_cost } => {
                out.push_str(&format!(
                    "{pad}HashJoin on {} preds (rows={est_rows:.1} cost={est_cost:.1})\n",
                    on.len()
                ));
                build.explain_into(out, depth + 1);
                probe.explain_into(out, depth + 1);
            }
            PlanNode::IndexNlJoin { outer, inner, index, est_rows, est_cost, .. } => {
                out.push_str(&format!(
                    "{pad}IndexNLJoin inner=t{} via [{index}] (rows={est_rows:.1} cost={est_cost:.1})\n",
                    inner.0
                ));
                outer.explain_into(out, depth + 1);
            }
        }
    }
}

/// A complete optimized plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Root of the operator tree.
    pub root: PlanNode,
}

impl Plan {
    /// Total estimated cost in cost units.
    pub fn est_cost(&self) -> f64 {
        self.root.est_cost()
    }

    /// Estimated result cardinality.
    pub fn est_rows(&self) -> f64 {
        self.root.est_rows()
    }

    /// Indices the plan relies on.
    pub fn used_indices(&self) -> Vec<ColRef> {
        self.root.used_indices()
    }

    /// Tables the plan reads with a full sequential scan — the
    /// opportunities a piggybacking index build can ride on.
    pub fn seq_scanned_tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.root.collect_seq_scans(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// EXPLAIN output.
    pub fn explain(&self) -> String {
        self.root.explain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(t: u32, cost: f64) -> PlanNode {
        PlanNode::Scan { table: TableId(t), path: AccessPath::SeqScan, est_rows: 10.0, est_cost: cost }
    }

    #[test]
    fn plan_accessors() {
        let join = PlanNode::HashJoin {
            build: Box::new(scan(0, 5.0)),
            probe: Box::new(PlanNode::Scan {
                table: TableId(1),
                path: AccessPath::IndexScan { col: ColRef::new(TableId(1), 2) },
                est_rows: 3.0,
                est_cost: 2.0,
            }),
            on: vec![],
            est_rows: 30.0,
            est_cost: 10.0,
        };
        let plan = Plan { root: join };
        assert_eq!(plan.est_cost(), 10.0);
        assert_eq!(plan.est_rows(), 30.0);
        assert_eq!(plan.root.tables(), vec![TableId(0), TableId(1)]);
        assert_eq!(plan.used_indices(), vec![ColRef::new(TableId(1), 2)]);
        let ex = plan.explain();
        assert!(ex.contains("HashJoin"));
        assert!(ex.contains("IndexScan[t1.c2]"));
        assert!(ex.contains("SeqScan t0"));
    }
}
