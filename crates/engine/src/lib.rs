//! # colt-engine
//!
//! The relational engine substrate of the COLT reproduction: an SPJ query
//! model, selectivity estimation over catalog statistics, System-R cost
//! formulas, a Selinger-style dynamic-programming optimizer, the what-if
//! interface COLT profiles through, and an executor that runs plans
//! against real data while charging a deterministic simulated clock.
//!
//! The split that matters for reproducing the paper:
//!
//! * the **optimizer** sees only *estimates* (histograms, index shape
//!   estimates) — its costs are what `WhatIfOptimize` returns;
//! * the **executor** performs the work and charges *actual* counts —
//!   its simulated milliseconds are what every figure reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod batch;
pub mod cost;
pub mod error;
pub mod executor;
pub mod memo;
pub mod optimizer;
pub mod plan;
pub mod query;
pub mod rowwise;
pub mod selectivity;
pub mod sql;
pub mod whatif;

pub use aggregate::{AggExpr, AggFunc, AggSpec};
pub use batch::{ColumnBatch, TableLayout, BATCH_ROWS};
pub use error::ExecError;
pub use executor::{Collect, ExecOutput, Executor, QueryResult};
pub use rowwise::RowwiseExecutor;
pub use memo::{MemoHandle, WhatIfMemo};
pub use optimizer::{IndexSetView, Optimizer, OptimizerOptions};
pub use plan::{AccessPath, Plan, PlanNode};
pub use query::{JoinPred, PredicateKind, Query, RangeBound, SelPred};
pub use sql::{parse as parse_sql, ParseError, ParsedQuery};
pub use whatif::{Eqo, EqoCounters, IndexGain};
