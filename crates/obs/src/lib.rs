//! # colt-obs
//!
//! Zero-dependency observability for the COLT reproduction: a
//! global-free metrics [`Recorder`] (counters, gauges, fixed-bucket
//! histograms, span timings), RAII [`Span`] guards over the wall clock
//! with explicit simulated-clock attribution, and a structured
//! [`Event`] sink that replaces ad-hoc `eprintln!` diagnostics with one
//! format across the whole tuner stack.
//!
//! ## Deployment model
//!
//! There is **no global mutable state**: a [`Recorder`] is plain owned
//! data. Instrumented code reaches the recorder through a thread-local
//! slot ([`install`] / [`take`]); a driver that wants metrics installs
//! a recorder around the region it measures and takes the snapshot out
//! afterwards. The parallel harness installs one recorder per run cell
//! on the worker thread that executes it and merges the per-cell
//! [`Snapshot`]s after the threads join — there are no locks or shared
//! caches on the hot path.
//!
//! When no recorder is installed (or an [`Level::Off`] recorder is),
//! every instrumentation call is a thread-local flag check and nothing
//! else, so uninstrumented binaries and `COLT_OBS=off` runs pay
//! near-zero overhead.
//!
//! ## Levels (`COLT_OBS`)
//!
//! * `off` — no recording, no stderr output from the sink.
//! * `summary` (default) — metrics are recorded; progress events print
//!   one compact human line each to stderr.
//! * `full` — metrics are recorded; every event prints as one-line JSON
//!   (JSONL) to stderr.
//!
//! **No level ever writes to stdout**, so experiment artifacts remain
//! byte-identical across levels and thread counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod ledger;
pub mod recorder;

pub use event::{Event, FieldValue};
pub use hist::{Histogram, DURATION_US_BUCKETS, GENERIC_BUCKETS};
pub use ledger::{DecisionLedger, DecisionRecord, EpochPoint, TimeSeries, LEDGER_KINDS};
pub use recorder::{Recorder, Snapshot, SpanStats};

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Instant;

/// Observability level, selected by the `COLT_OBS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Record nothing, print nothing.
    Off,
    /// Record metrics; print progress events as compact human lines.
    #[default]
    Summary,
    /// Record metrics; print every event as one-line JSON (JSONL).
    Full,
}

impl Level {
    /// Parse `"off"` / `"summary"` / `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "summary" | "1" => Some(Level::Summary),
            "full" | "2" => Some(Level::Full),
            _ => None,
        }
    }

    /// The level selected by `COLT_OBS` (default [`Level::Summary`];
    /// unrecognized values also fall back to the default). The value is
    /// read once per process.
    pub fn from_env() -> Level {
        static ENV: OnceLock<Level> = OnceLock::new();
        *ENV.get_or_init(|| {
            std::env::var("COLT_OBS").ok().and_then(|s| Level::parse(&s)).unwrap_or_default()
        })
    }
}

thread_local! {
    /// Fast-path cache: 0 = nothing to do (no recorder, or an Off
    /// recorder), 1 = Summary recorder installed, 2 = Full.
    static ACTIVE: Cell<u8> = const { Cell::new(0) };
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

fn level_byte(level: Level) -> u8 {
    match level {
        Level::Off => 0,
        Level::Summary => 1,
        Level::Full => 2,
    }
}

/// Install a recorder into this thread's slot, returning the previously
/// installed one (to be re-installed when the measured region ends).
pub fn install(recorder: Recorder) -> Option<Recorder> {
    ACTIVE.with(|a| a.set(level_byte(recorder.level())));
    CURRENT.with(|c| c.replace(Some(recorder)))
}

/// Remove and return this thread's recorder (its snapshot is taken with
/// [`Recorder::into_snapshot`]). Recording stops until the next
/// [`install`].
pub fn take() -> Option<Recorder> {
    ACTIVE.with(|a| a.set(0));
    CURRENT.with(|c| c.take())
}

/// True when an active (non-[`Level::Off`]) recorder is installed on
/// this thread.
pub fn is_enabled() -> bool {
    ACTIVE.with(|a| a.get() > 0)
}

/// The level governing stderr emission on this thread: the installed
/// recorder's level when one is present, else the `COLT_OBS`
/// environment level. Threads without a recorder (e.g. a bench binary's
/// main thread) still get uniformly formatted progress output.
pub fn sink_level() -> Level {
    CURRENT.with(|c| c.borrow().as_ref().map(Recorder::level)).unwrap_or_else(Level::from_env)
}

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> Option<R> {
    if !is_enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Add `n` to a named counter.
pub fn counter(name: &'static str, n: u64) {
    with_recorder(|r| r.add_counter(name, n));
}

/// Set a named gauge.
pub fn gauge(name: &'static str, v: f64) {
    with_recorder(|r| r.set_gauge(name, v));
}

/// Record a value into a named histogram.
pub fn observe(name: &'static str, v: f64) {
    with_recorder(|r| r.observe(name, v));
}

/// Attribute simulated milliseconds to a named span without opening a
/// guard (for costs that are only known after the guard has dropped).
pub fn span_sim(name: &'static str, sim_ms: f64) {
    with_recorder(|r| r.record_span_sim(name, sim_ms));
}

/// Open an RAII span guard; its wall-clock duration is recorded when
/// the guard drops, and the span is pushed onto the recorder's flame
/// stack for folded-stack self-time attribution. Inert (no
/// `Instant::now`) when recording is off.
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { name, start: None };
    }
    with_recorder(|r| r.flame_enter(name));
    Span { name, start: Some(Instant::now()) }
}

/// An open span; see [`span`].
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Attribute simulated milliseconds to this span (the deterministic
    /// clock has no ambient "now", so sites report it explicitly).
    pub fn sim_ms(&self, ms: f64) {
        if self.start.is_some() {
            span_sim(self.name, ms);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            with_recorder(|r| {
                r.record_span(self.name, ns);
                r.flame_exit(self.name);
            });
        }
    }
}

/// Append a decision record to the installed recorder's flight-recorder
/// ledger; the record is stamped with the recorder's current epoch.
/// Sites that build non-trivial field sets should guard with
/// [`is_enabled`] to skip the construction cost when recording is off.
pub fn decision(record: DecisionRecord) {
    with_recorder(|r| r.record_decision(record));
}

/// Close epoch `epoch` in the installed recorder's flight recorder:
/// push the per-epoch metric deltas into the time series and stamp
/// subsequent decisions with `epoch + 1`. Call once per closed epoch
/// (the tuner does) plus once at run end to flush the trailing partial
/// epoch.
pub fn epoch_mark(epoch: u64) {
    with_recorder(|r| r.mark_epoch(epoch));
}

/// Emit a structured event: retained by the installed recorder, and
/// printed to stderr as JSONL at [`Level::Full`].
pub fn emit(event: Event) {
    if sink_level() == Level::Full {
        eprintln!("{}", event.jsonl());
    }
    with_recorder(|r| r.record_event(event));
}

/// Emit a *progress* event: like [`emit`], but at [`Level::Summary`] it
/// also prints the compact human rendering — this is the one stderr
/// format every binary shares.
pub fn progress(event: Event) {
    match sink_level() {
        Level::Off => {}
        Level::Summary => eprintln!("{}", event.human()),
        Level::Full => eprintln!("{}", event.jsonl()),
    }
    with_recorder(|r| r.record_event(event));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording into an installed recorder and draining the snapshot.
    #[test]
    fn install_record_take() {
        assert!(!is_enabled());
        assert!(install(Recorder::new(Level::Full)).is_none());
        assert!(is_enabled());
        counter("c", 2);
        gauge("g", 1.0);
        observe("h", 3.0);
        {
            let s = span("s");
            s.sim_ms(4.5);
        }
        emit(Event::new("e"));
        let snap = take().unwrap().into_snapshot();
        assert!(!is_enabled());
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.span("s").unwrap().count, 1);
        assert_eq!(snap.span("s").unwrap().sim_ms, 4.5);
        assert!(snap.span("s").unwrap().wall_ns > 0);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn span_guards_populate_the_flame_accumulator() {
        install(Recorder::new(Level::Full));
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let snap = take().unwrap().into_snapshot();
        assert!(snap.flame.contains_key("outer;inner"), "flame: {:?}", snap.flame);
        assert!(!snap.folded_flame().is_empty());
    }

    #[test]
    fn off_recorder_is_inert() {
        let prev = install(Recorder::new(Level::Off));
        assert!(prev.is_none());
        assert!(!is_enabled());
        counter("c", 1);
        let _s = span("s");
        emit(Event::new("e"));
        drop(_s);
        let snap = take().unwrap().into_snapshot();
        assert!(snap.is_empty());
    }

    #[test]
    fn no_recorder_is_inert() {
        // Must not panic or leak state.
        counter("c", 1);
        observe("h", 1.0);
        span_sim("s", 1.0);
        drop(span("s"));
        emit(Event::new("e"));
        progress(Event::new("p"));
        decision(DecisionRecord::new("knapsack"));
        epoch_mark(0);
        assert!(take().is_none());
    }

    #[test]
    fn flight_recorder_records_through_the_thread_local() {
        install(Recorder::new(Level::Summary));
        decision(DecisionRecord::new("knapsack").field("spent_pages", 3u64));
        counter("c", 1);
        epoch_mark(0);
        decision(DecisionRecord::new("index_create"));
        let snap = take().unwrap().into_snapshot();
        let records: Vec<(u64, &str)> = snap.ledger.records().map(|d| (d.epoch, d.kind)).collect();
        assert_eq!(records, [(0, "knapsack"), (1, "index_create")]);
        assert_eq!(snap.series.len(), 1);
        assert_eq!(snap.series.counter_at(0, "c"), 1);
    }

    #[test]
    fn nested_install_restores() {
        install(Recorder::new(Level::Summary));
        counter("outer", 1);
        let prev = install(Recorder::new(Level::Full)).expect("outer recorder");
        counter("inner", 1);
        let inner = take().unwrap().into_snapshot();
        install(prev);
        counter("outer", 1);
        let outer = take().unwrap().into_snapshot();
        assert_eq!(inner.counter("inner"), 1);
        assert_eq!(inner.counter("outer"), 0);
        assert_eq!(outer.counter("outer"), 2);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("SUMMARY"), Some(Level::Summary));
        assert_eq!(Level::parse(" full "), Some(Level::Full));
        assert_eq!(Level::parse("banana"), None);
        assert_eq!(Level::default(), Level::Summary);
    }
}
