//! The tuner flight recorder: a bounded [`DecisionLedger`] of every
//! tuner decision and a per-epoch metric [`TimeSeries`].
//!
//! Both stores are deterministic by construction: records carry only
//! simulated/derived values (epochs, page counts, gains, simulated
//! milliseconds) — never the wall clock — so their JSONL dumps are
//! byte-identical across `COLT_OBS` levels and `COLT_THREADS` counts.
//! Both are fixed-capacity rings: when full, the **oldest** entry is
//! evicted and counted, so a long run degrades to a recent-history
//! window instead of growing without bound.

use crate::event::{write_json_str, write_json_value, FieldValue};
use std::collections::VecDeque;

/// Default [`DecisionLedger`] capacity (records).
pub const DEFAULT_LEDGER_CAPACITY: usize = 65_536;

/// Default [`TimeSeries`] capacity (epoch points).
pub const DEFAULT_SERIES_CAPACITY: usize = 4_096;

/// Every ledger record kind, with its owning crate — the one crate
/// allowed to emit it (enforced statically by `colt-analyze`'s
/// `ledger-owner` lint).
pub const LEDGER_KINDS: &[(&str, &str)] = &[
    ("whatif_probe", "core"),
    ("whatif_skip", "core"),
    ("cluster_assign", "core"),
    ("knapsack", "core"),
    ("index_create", "core"),
    ("index_drop", "core"),
    ("budget_change", "core"),
];

/// One tuner decision: a kind, the epoch it was taken in, and ordered
/// key/value fields carrying the decision's inputs and outputs.
///
/// The epoch is stamped by the recorder at record time (sites do not
/// thread epoch numbers through their signatures); build one with
/// [`DecisionRecord::new`] and record it via `colt_obs::decision`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// The epoch the decision was taken in.
    pub epoch: u64,
    /// The decision kind; must be listed in [`LEDGER_KINDS`].
    pub kind: &'static str,
    /// Ordered fields (decision inputs and outputs).
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl DecisionRecord {
    /// A record with no fields yet; the epoch is stamped when the
    /// record reaches the recorder.
    pub fn new(kind: &'static str) -> Self {
        DecisionRecord { epoch: 0, kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Field lookup by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// A field as `u64` (through `I64`/`F64` when lossless).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            FieldValue::U64(n) => Some(*n),
            FieldValue::I64(n) => u64::try_from(*n).ok(),
            FieldValue::F64(f) if *f >= 0.0 && *f == f.trunc() => Some(*f as u64),
            _ => None,
        }
    }

    /// A field as `f64`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            FieldValue::F64(f) => Some(*f),
            FieldValue::U64(n) => Some(*n as f64),
            FieldValue::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// A field as `&str`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// One-line JSON: `{"decision":"kind","epoch":3,"k":v,...}`.
    pub fn jsonl(&self) -> String {
        let mut out = String::from("{\"decision\":");
        write_json_str(&mut out, self.kind);
        out.push_str(&format!(",\"epoch\":{}", self.epoch));
        for (k, v) in &self.fields {
            out.push(',');
            write_json_str(&mut out, k);
            out.push(':');
            write_json_value(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// A bounded, append-only ring of [`DecisionRecord`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionLedger {
    capacity: usize,
    records: VecDeque<DecisionRecord>,
    evicted: u64,
}

impl Default for DecisionLedger {
    fn default() -> Self {
        Self::new(DEFAULT_LEDGER_CAPACITY)
    }
}

impl DecisionLedger {
    /// An empty ledger holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        DecisionLedger { capacity: capacity.max(1), records: VecDeque::new(), evicted: 0 }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, record: DecisionRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(record);
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    /// Retained records of one kind, oldest first.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a DecisionRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The largest epoch of any retained record, when non-empty.
    pub fn max_epoch(&self) -> Option<u64> {
        self.records.iter().map(|r| r.epoch).max()
    }

    /// Fold another ledger into this one: records append in call order
    /// (the parallel harness merges cells in submission order, which
    /// makes the merged ledger identical at every thread count); the
    /// bound still applies and evictions accumulate.
    pub fn merge(&mut self, other: &DecisionLedger) {
        self.evicted += other.evicted;
        for r in &other.records {
            self.push(r.clone());
        }
    }

    /// The ledger as JSONL, one record per line (trailing newline when
    /// non-empty).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.jsonl());
            out.push('\n');
        }
        out
    }
}

/// One time-series point: the deltas every counter, histogram
/// observation count, and span's simulated milliseconds accumulated
/// over one epoch. Zero deltas are omitted; names are sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPoint {
    /// The epoch the deltas cover.
    pub epoch: u64,
    /// Counter deltas over the epoch (histogram observation counts
    /// appear as `<name>.count`), sorted by name, zeros omitted.
    pub counters: Vec<(String, u64)>,
    /// Span simulated-millisecond deltas over the epoch, sorted by
    /// name, zeros omitted.
    pub sim_ms: Vec<(String, f64)>,
}

impl EpochPoint {
    /// A counter's delta at this point (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
    }

    /// A span's simulated-ms delta at this point (0 when absent).
    pub fn sim(&self, name: &str) -> f64 {
        self.sim_ms.iter().find(|(k, _)| k == name).map_or(0.0, |(_, v)| *v)
    }

    /// True when every delta is zero.
    pub fn is_zero(&self) -> bool {
        self.counters.is_empty() && self.sim_ms.is_empty()
    }

    /// One-line JSON:
    /// `{"series_epoch":3,"counters":{...},"sim_ms":{...}}`.
    pub fn jsonl(&self) -> String {
        let mut out = format!("{{\"series_epoch\":{}", self.epoch);
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, k);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"sim_ms\":{");
        for (i, (k, v)) in self.sim_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, k);
            out.push(':');
            write_json_value(&mut out, &FieldValue::F64(*v));
        }
        out.push_str("}}");
        out
    }
}

/// A bounded ring of per-epoch metric deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    points: VecDeque<EpochPoint>,
    evicted: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl TimeSeries {
    /// An empty series holding at most `capacity` points (min 1).
    pub fn new(capacity: usize) -> Self {
        TimeSeries { capacity: capacity.max(1), points: VecDeque::new(), evicted: 0 }
    }

    /// Append a point, evicting the oldest when full.
    pub fn push(&mut self, point: EpochPoint) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back(point);
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &EpochPoint> {
        self.points.iter()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The largest epoch of any retained point, when non-empty.
    pub fn max_epoch(&self) -> Option<u64> {
        self.points.iter().map(|p| p.epoch).max()
    }

    /// Sum of one counter's deltas across all points with the given
    /// epoch (a merged snapshot may hold one point per run cell).
    pub fn counter_at(&self, epoch: u64, name: &str) -> u64 {
        self.points.iter().filter(|p| p.epoch == epoch).map(|p| p.counter(name)).sum()
    }

    /// Fold another series into this one (points append in call order;
    /// see [`DecisionLedger::merge`] for the determinism argument).
    pub fn merge(&mut self, other: &TimeSeries) {
        self.evicted += other.evicted;
        for p in &other.points {
            self.push(p.clone());
        }
    }

    /// The series as JSONL, one point per line (trailing newline when
    /// non-empty).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&p.jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_jsonl_shape() {
        let mut r = DecisionRecord::new("knapsack")
            .field("budget_pages", 100u64)
            .field("free_value", 2.5)
            .field("adopted", "free");
        r.epoch = 3;
        assert_eq!(
            r.jsonl(),
            r#"{"decision":"knapsack","epoch":3,"budget_pages":100,"free_value":2.5,"adopted":"free"}"#
        );
        assert_eq!(r.get_u64("budget_pages"), Some(100));
        assert_eq!(r.get_f64("free_value"), Some(2.5));
        assert_eq!(r.get_str("adopted"), Some("free"));
        assert_eq!(r.get("nope"), None);
    }

    #[test]
    fn ledger_bounds_and_counts_evictions() {
        let mut l = DecisionLedger::new(3);
        for i in 0..5u64 {
            let mut r = DecisionRecord::new("whatif_probe");
            r.epoch = i;
            l.push(r);
        }
        assert_eq!(l.len(), 3);
        assert_eq!(l.evicted(), 2);
        // Oldest evicted: epochs 2, 3, 4 remain, in order.
        let epochs: Vec<u64> = l.records().map(|r| r.epoch).collect();
        assert_eq!(epochs, [2, 3, 4]);
        assert_eq!(l.max_epoch(), Some(4));
    }

    #[test]
    fn ledger_merge_appends_in_call_order_and_keeps_bound() {
        let mut a = DecisionLedger::new(4);
        let mut b = DecisionLedger::new(4);
        for i in 0..3u64 {
            let mut r = DecisionRecord::new("knapsack");
            r.epoch = i;
            a.push(r.clone());
            r.kind = "index_create";
            b.push(r);
        }
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.evicted(), 2);
        let kinds: Vec<&str> = a.records().map(|r| r.kind).collect();
        assert_eq!(kinds, ["knapsack", "index_create", "index_create", "index_create"]);
    }

    #[test]
    fn series_bounds_and_sums_per_epoch() {
        let mut s = TimeSeries::new(2);
        for epoch in 0..3u64 {
            s.push(EpochPoint {
                epoch,
                counters: vec![("engine.op.hash_join".into(), epoch + 1)],
                sim_ms: vec![("harness.execute".into(), 0.5)],
            });
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.evicted(), 1);
        assert_eq!(s.max_epoch(), Some(2));
        assert_eq!(s.counter_at(2, "engine.op.hash_join"), 3);
        assert_eq!(s.counter_at(0, "engine.op.hash_join"), 0); // evicted
        let p = s.points().next().unwrap();
        assert_eq!(p.counter("engine.op.hash_join"), 2);
        assert_eq!(p.sim("harness.execute"), 0.5);
        assert!(!p.is_zero());
    }

    #[test]
    fn point_jsonl_shape() {
        let p = EpochPoint {
            epoch: 7,
            counters: vec![("a.b".into(), 2)],
            sim_ms: vec![("c.d".into(), 1.5)],
        };
        assert_eq!(p.jsonl(), r#"{"series_epoch":7,"counters":{"a.b":2},"sim_ms":{"c.d":1.5}}"#);
        let empty = EpochPoint { epoch: 0, counters: vec![], sim_ms: vec![] };
        assert!(empty.is_zero());
        assert_eq!(empty.jsonl(), r#"{"series_epoch":0,"counters":{},"sim_ms":{}}"#);
    }

    #[test]
    fn every_ledger_kind_names_a_real_crate() {
        for (kind, owner) in LEDGER_KINDS {
            assert!(!kind.is_empty());
            assert!(["core", "engine", "harness"].contains(owner), "unexpected owner {owner}");
        }
    }
}
