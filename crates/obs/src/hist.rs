//! Fixed-bucket histograms.
//!
//! Buckets are defined by a static slice of ascending upper bounds; a
//! final `+Inf` bucket is implicit. An observation `v` lands in the
//! first bucket whose bound satisfies `v <= bound` (Prometheus `le`
//! semantics), so a value exactly on a boundary belongs to the bucket
//! the boundary names.

/// Default bucket upper bounds for span durations, in microseconds:
/// 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s (+Inf implicit).
pub const DURATION_US_BUCKETS: &[f64] =
    &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// Default bucket upper bounds for generic value observations
/// (powers of ten from 1 to 1e6, +Inf implicit).
pub const GENERIC_BUCKETS: &[f64] = &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];

/// A fixed-bucket histogram with running sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds; one extra
    /// `+Inf` bucket is appended implicitly.
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram { bounds, counts: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| v > b);
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts; the last entry is the `+Inf` bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts in Prometheus `le` form (last entry == total).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Fold another histogram (with the same bounds) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "merging histograms with different buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_value_lands_in_named_bucket() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.observe(10.0); // exactly on the first bound → le=10 bucket
        h.observe(10.000001); // just above → le=100 bucket
        h.observe(100.0); // exactly on the second bound → le=100 bucket
        h.observe(100.5); // above every bound → +Inf bucket
        assert_eq!(h.bucket_counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 220.500001).abs() < 1e-6);
    }

    #[test]
    fn below_first_bound_and_negative() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.observe(0.0);
        h.observe(-5.0); // degenerate but must not panic or misplace
        assert_eq!(h.bucket_counts(), &[2, 0, 0]);
    }

    #[test]
    fn cumulative_is_monotone_and_totals() {
        let mut h = Histogram::new(&[1.0, 2.0, 3.0]);
        for v in [0.5, 1.5, 2.5, 3.5, 3.5] {
            h.observe(v);
        }
        assert_eq!(h.cumulative(), vec![1, 2, 3, 5]);
        assert_eq!(*h.cumulative().last().unwrap(), h.count());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(DURATION_US_BUCKETS);
        let mut b = Histogram::new(DURATION_US_BUCKETS);
        a.observe(5.0);
        b.observe(50.0);
        b.observe(5_000_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts()[0], 1); // 5 µs
        assert_eq!(a.bucket_counts()[1], 1); // 50 µs
        assert_eq!(*a.bucket_counts().last().unwrap(), 1); // +Inf
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(GENERIC_BUCKETS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert!(h.bucket_counts().iter().all(|&c| c == 0));
    }
}
