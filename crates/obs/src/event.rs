//! Structured events and their two renderings: one-line JSON (the JSONL
//! sink consumed by tooling and CI) and a compact human line (the
//! `summary`-level stderr format shared by every binary).
//!
//! The JSON rendering is deliberately compatible with the hand-rolled
//! parser in `colt_core::json` — the repo's round-trip tests parse the
//! sink's output with it.

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with a decimal point, like `colt_core::json`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One structured event: a kind plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The event kind, e.g. `"epoch"`, `"index_create"`, `"cell_finish"`.
    pub kind: &'static str,
    /// Ordered fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// An event with no fields yet.
    pub fn new(kind: &'static str) -> Self {
        Event { kind, fields: Vec::new() }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Field lookup by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One-line JSON: `{"event":"kind","k":v,...}`.
    pub fn jsonl(&self) -> String {
        let mut out = String::from("{\"event\":");
        write_json_str(&mut out, self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_str(&mut out, k);
            out.push(':');
            write_json_value(&mut out, v);
        }
        out.push('}');
        out
    }

    /// The compact human rendering used at the `summary` level:
    /// `[obs] kind k=v k=v`.
    pub fn human(&self) -> String {
        let mut out = format!("[obs] {}", self.kind);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(f) => out.push_str(&format_float(*f)),
                FieldValue::Str(s) => out.push_str(s),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out
    }
}

pub(crate) fn write_json_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(f) => out.push_str(&format_float(*f)),
        FieldValue::Str(s) => write_json_str(out, s),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Render a float so it parses back as a float: always a decimal point
/// (matching `colt_core::json`'s convention), `null` for non-finite.
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_shape() {
        let e = Event::new("epoch")
            .field("epoch", 3u64)
            .field("ratio", 1.25)
            .field("label", "COLT seed=42")
            .field("closed", true)
            .field("delta", -2i64);
        assert_eq!(
            e.jsonl(),
            r#"{"event":"epoch","epoch":3,"ratio":1.25,"label":"COLT seed=42","closed":true,"delta":-2}"#
        );
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        let e = Event::new("t").field("ms", 5.0);
        assert_eq!(e.jsonl(), r#"{"event":"t","ms":5.0}"#);
    }

    #[test]
    fn strings_escaped() {
        let e = Event::new("t").field("s", "a\"b\\c\nd");
        assert_eq!(e.jsonl(), r#"{"event":"t","s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn human_line() {
        let e = Event::new("cell_finish").field("cell", 2u64).field("wall_ms", 12.5);
        assert_eq!(e.human(), "[obs] cell_finish cell=2 wall_ms=12.5");
    }

    #[test]
    fn get_finds_fields() {
        let e = Event::new("t").field("a", 1u64);
        assert_eq!(e.get("a"), Some(&FieldValue::U64(1)));
        assert_eq!(e.get("b"), None);
    }
}
