//! The metrics recorder and its immutable snapshot.
//!
//! A [`Recorder`] is plain owned state — no globals, no locks, no
//! atomics. The intended deployment (see the crate docs) is one
//! recorder per thread, installed into the thread-local slot for the
//! duration of a run and merged with sibling snapshots afterwards; the
//! hot path is therefore a thread-local pointer check plus a `BTreeMap`
//! bump, and aggregation across threads happens outside the measured
//! region entirely.

use crate::event::Event;
use crate::hist::{Histogram, DURATION_US_BUCKETS, GENERIC_BUCKETS};
use crate::ledger::{DecisionLedger, DecisionRecord, EpochPoint, TimeSeries};
use crate::Level;
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated timing of one named span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions.
    pub wall_ns: u64,
    /// Total *simulated* milliseconds attributed to the span (reported
    /// explicitly by instrumented sites; the deterministic clock has no
    /// ambient "now").
    pub sim_ms: f64,
    /// Wall-clock duration distribution, in microseconds.
    pub wall_us: Histogram,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats { count: 0, wall_ns: 0, sim_ms: 0.0, wall_us: Histogram::new(DURATION_US_BUCKETS) }
    }

    /// Total wall-clock milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.wall_ns += other.wall_ns;
        self.sim_ms += other.sim_ms;
        self.wall_us.merge(&other.wall_us);
    }
}

/// A mutable metrics recorder: counters, gauges, histograms, span
/// timings, and the retained structured-event stream.
#[derive(Debug, Clone)]
pub struct Recorder {
    level: Level,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
    events: Vec<Event>,
    /// Self-time flame accumulator: the live span stack, the instant of
    /// the last enter/exit transition, and folded-stack self time in
    /// nanoseconds keyed by `outer;inner;leaf`.
    flame_stack: Vec<&'static str>,
    flame_last: Option<Instant>,
    flame: BTreeMap<String, u64>,
    /// Flight recorder: the decision ledger, the per-epoch time series,
    /// the epoch stamped onto incoming decisions, and the metric
    /// baselines the next [`Recorder::mark_epoch`] diffs against.
    ledger: DecisionLedger,
    series: TimeSeries,
    epoch: u64,
    series_counter_base: BTreeMap<&'static str, u64>,
    series_hist_base: BTreeMap<&'static str, u64>,
    series_sim_base: BTreeMap<&'static str, f64>,
}

impl Recorder {
    /// A recorder at the given level. [`Level::Off`] recorders are
    /// inert: installing one disables all recording on the thread.
    pub fn new(level: Level) -> Self {
        Recorder {
            level,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            spans: BTreeMap::new(),
            events: Vec::new(),
            flame_stack: Vec::new(),
            flame_last: None,
            flame: BTreeMap::new(),
            ledger: DecisionLedger::default(),
            series: TimeSeries::default(),
            epoch: 0,
            series_counter_base: BTreeMap::new(),
            series_hist_base: BTreeMap::new(),
            series_sim_base: BTreeMap::new(),
        }
    }

    /// Replace the decision ledger's capacity (testing hook for
    /// eviction behavior; the default bound is
    /// [`crate::ledger::DEFAULT_LEDGER_CAPACITY`]).
    pub fn with_ledger_capacity(mut self, capacity: usize) -> Self {
        self.ledger = DecisionLedger::new(capacity);
        self
    }

    /// Replace the time series' capacity (testing hook; the default
    /// bound is [`crate::ledger::DEFAULT_SERIES_CAPACITY`]).
    pub fn with_series_capacity(mut self, capacity: usize) -> Self {
        self.series = TimeSeries::new(capacity);
        self
    }

    /// A recorder at the level selected by the `COLT_OBS` environment
    /// variable (see [`Level::from_env`]).
    pub fn from_env() -> Self {
        Self::new(Level::from_env())
    }

    /// The recorder's level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Add `n` to a named counter.
    pub fn add_counter(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Set a named gauge to its latest value.
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Record a value into a named fixed-bucket histogram.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.hists.entry(name).or_insert_with(|| Histogram::new(GENERIC_BUCKETS)).observe(v);
    }

    /// Record one completed span of `wall_ns` nanoseconds.
    pub fn record_span(&mut self, name: &'static str, wall_ns: u64) {
        let s = self.spans.entry(name).or_insert_with(SpanStats::new);
        s.count += 1;
        s.wall_ns += wall_ns;
        s.wall_us.observe(wall_ns as f64 / 1e3);
    }

    /// Attribute simulated milliseconds to a named span.
    pub fn record_span_sim(&mut self, name: &'static str, sim_ms: f64) {
        self.spans.entry(name).or_insert_with(SpanStats::new).sim_ms += sim_ms;
    }

    /// A span guard opened: attribute elapsed self time to the current
    /// stack, then push the new frame.
    pub fn flame_enter(&mut self, name: &'static str) {
        self.flame_tick();
        self.flame_stack.push(name);
    }

    /// A span guard dropped: attribute elapsed self time to the current
    /// stack, then pop the frame. Guards normally drop in LIFO order;
    /// if one outlives a later sibling, the deepest frame with this
    /// name is removed so the stack stays consistent.
    pub fn flame_exit(&mut self, name: &'static str) {
        self.flame_tick();
        if self.flame_stack.last() == Some(&name) {
            self.flame_stack.pop();
        } else if let Some(pos) = self.flame_stack.iter().rposition(|&f| f == name) {
            self.flame_stack.remove(pos);
        }
    }

    /// Charge the time since the previous transition to whatever stack
    /// was live across that interval (self time, not inclusive time).
    fn flame_tick(&mut self) {
        let now = Instant::now();
        if let Some(last) = self.flame_last {
            if !self.flame_stack.is_empty() {
                let ns = now.duration_since(last).as_nanos().min(u64::MAX as u128) as u64;
                *self.flame.entry(self.flame_stack.join(";")).or_insert(0) += ns;
            }
        }
        self.flame_last = Some(now);
    }

    /// Retain a structured event.
    pub fn record_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Append a decision record to the ledger, stamping it with the
    /// recorder's current epoch.
    pub fn record_decision(&mut self, mut record: DecisionRecord) {
        record.epoch = self.epoch;
        self.ledger.push(record);
    }

    /// The epoch the next decision record will be stamped with.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Close epoch `epoch` in the flight recorder: snapshot every
    /// counter/histogram/span-sim delta since the previous mark into a
    /// time-series point (skipped when all deltas are zero), advance
    /// the baselines, and stamp subsequent decisions with `epoch + 1`.
    pub fn mark_epoch(&mut self, epoch: u64) {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for (&name, &v) in &self.counters {
            let base = self.series_counter_base.get(name).copied().unwrap_or(0);
            if v > base {
                counters.push((name.to_string(), v - base));
            }
        }
        for (&name, hist) in &self.hists {
            let v = hist.count();
            let base = self.series_hist_base.get(name).copied().unwrap_or(0);
            if v > base {
                counters.push((format!("{name}.count"), v - base));
            }
        }
        counters.sort();
        let mut sim_ms: Vec<(String, f64)> = Vec::new();
        for (&name, stats) in &self.spans {
            let base = self.series_sim_base.get(name).copied().unwrap_or(0.0);
            if stats.sim_ms != base {
                sim_ms.push((name.to_string(), stats.sim_ms - base));
            }
        }
        sim_ms.sort_by(|a, b| a.0.cmp(&b.0));
        let point = EpochPoint { epoch, counters, sim_ms };
        if !point.is_zero() {
            self.series.push(point);
        }
        self.series_counter_base = self.counters.clone();
        self.series_hist_base = self.hists.iter().map(|(&k, h)| (k, h.count())).collect();
        self.series_sim_base = self.spans.iter().map(|(&k, s)| (k, s.sim_ms)).collect();
        self.epoch = epoch + 1;
    }

    /// Freeze the recorder into a snapshot.
    pub fn into_snapshot(self) -> Snapshot {
        Snapshot {
            counters: self.counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: self.gauges.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            hists: self.hists.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            spans: self.spans.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            events: self.events,
            flame: self.flame,
            ledger: self.ledger,
            series: self.series,
        }
    }
}

/// An immutable, mergeable snapshot of a recorder's state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Value histograms by name.
    pub hists: BTreeMap<String, Histogram>,
    /// Span timings by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Retained structured events, in record order.
    pub events: Vec<Event>,
    /// Folded-stack self time in nanoseconds, keyed by
    /// `outer;inner;leaf` span paths.
    pub flame: BTreeMap<String, u64>,
    /// The flight recorder's decision ledger.
    pub ledger: DecisionLedger,
    /// The flight recorder's per-epoch time series.
    pub series: TimeSeries,
}

impl Snapshot {
    /// True when nothing was recorded (e.g. the run executed at
    /// [`Level::Off`]).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.flame.is_empty()
            && self.ledger.is_empty()
            && self.series.is_empty()
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A span's accumulated stats.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// A span's total wall-clock milliseconds (0 when absent).
    pub fn span_wall_ms(&self, name: &str) -> f64 {
        self.spans.get(name).map_or(0.0, SpanStats::wall_ms)
    }

    /// Fold another snapshot into this one: counters/histograms/spans
    /// accumulate, gauges take the other's value, events append.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.hists {
            match self.hists.get_mut(k) {
                Some(h) if h.bounds() == v.bounds() => h.merge(v),
                Some(_) | None => {
                    self.hists.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in &other.spans {
            match self.spans.get_mut(k) {
                Some(s) => s.merge(v),
                None => {
                    self.spans.insert(k.clone(), v.clone());
                }
            }
        }
        self.events.extend(other.events.iter().cloned());
        for (k, v) in &other.flame {
            *self.flame.entry(k.clone()).or_insert(0) += v;
        }
        self.ledger.merge(&other.ledger);
        self.series.merge(&other.series);
    }

    /// The flight recorder as JSONL: every ledger record, then every
    /// time-series point (the two line shapes are distinguished by
    /// their leading `"decision"` / `"series_epoch"` key). This is the
    /// `COLT_OBS_LEDGER` dump format; it contains only deterministic
    /// simulated values, so it is byte-identical across `COLT_OBS`
    /// levels and `COLT_THREADS` counts.
    pub fn flight_jsonl(&self) -> String {
        let mut out = self.ledger.jsonl();
        out.push_str(&self.series.jsonl());
        out
    }

    /// The flame accumulator as folded-stack lines (`outer;inner;leaf
    /// <ns>`, one per line, trailing newline when non-empty) — the input
    /// format of `flamegraph.pl` and `inferno-flamegraph`.
    pub fn folded_flame(&self) -> String {
        let mut out = String::new();
        for (stack, ns) in &self.flame {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }

    /// The retained event stream as JSONL (one event per line, trailing
    /// newline when non-empty).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.jsonl());
            out.push('\n');
        }
        out
    }

    /// Render every metric as a Prometheus-style text dump.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = metric_name(name, "");
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let m = metric_name(name, "");
            out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        for (name, h) in &self.hists {
            write_histogram(&mut out, &metric_name(name, ""), h);
        }
        for (name, s) in &self.spans {
            let base = metric_name(name, "_span");
            out.push_str(&format!(
                "# TYPE {base}_wall_seconds_total counter\n{base}_wall_seconds_total {}\n",
                s.wall_ns as f64 / 1e9
            ));
            out.push_str(&format!(
                "# TYPE {base}_sim_ms_total counter\n{base}_sim_ms_total {}\n",
                s.sim_ms
            ));
            write_histogram(&mut out, &format!("{base}_wall_us"), &s.wall_us);
        }
        out
    }
}

fn write_histogram(out: &mut String, base: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {base} histogram\n"));
    let cumulative = h.cumulative();
    for (i, c) in cumulative.iter().enumerate() {
        let le = match h.bounds().get(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {c}\n"));
    }
    out.push_str(&format!("{base}_sum {}\n{base}_count {}\n", h.sum(), h.count()));
}

/// `organizer.knapsack` → `colt_organizer_knapsack<suffix>`.
fn metric_name(name: &str, suffix: &str) -> String {
    let mut m = String::from("colt_");
    for c in name.chars() {
        m.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    m.push_str(suffix);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let mut r = Recorder::new(Level::Full);
        r.add_counter("a.b", 2);
        r.add_counter("a.b", 3);
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        r.observe("h", 50.0);
        r.record_span("s", 1_500_000); // 1.5 ms
        r.record_span_sim("s", 9.0);
        r.record_event(Event::new("e").field("x", 1u64));
        let s = r.into_snapshot();
        assert_eq!(s.counter("a.b"), 5);
        assert_eq!(s.gauges["g"], 2.5);
        assert_eq!(s.hists["h"].count(), 1);
        let span = s.span("s").unwrap();
        assert_eq!(span.count, 1);
        assert!((span.wall_ms() - 1.5).abs() < 1e-9);
        assert_eq!(span.sim_ms, 9.0);
        assert_eq!(s.events.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_snapshot() {
        assert!(Recorder::new(Level::Off).into_snapshot().is_empty());
        assert!(Snapshot::default().is_empty());
        assert_eq!(Snapshot::default().counter("nope"), 0);
        assert_eq!(Snapshot::default().span_wall_ms("nope"), 0.0);
    }

    #[test]
    fn merge_accumulates_and_appends() {
        let mut a = Recorder::new(Level::Full);
        a.add_counter("c", 1);
        a.record_span("s", 1_000);
        a.record_event(Event::new("first"));
        let mut b = Recorder::new(Level::Full);
        b.add_counter("c", 2);
        b.add_counter("d", 7);
        b.record_span("s", 2_000);
        b.record_event(Event::new("second"));
        let mut sa = a.into_snapshot();
        sa.merge(&b.into_snapshot());
        assert_eq!(sa.counter("c"), 3);
        assert_eq!(sa.counter("d"), 7);
        assert_eq!(sa.span("s").unwrap().count, 2);
        assert_eq!(sa.span("s").unwrap().wall_ns, 3_000);
        let kinds: Vec<&str> = sa.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["first", "second"]);
    }

    #[test]
    fn flame_folds_nested_stacks_with_self_time() {
        let mut r = Recorder::new(Level::Full);
        r.flame_enter("outer");
        r.flame_enter("inner");
        r.flame_exit("inner");
        r.flame_exit("outer");
        let s = r.into_snapshot();
        // Both the nested path and the outer self-time frame exist; the
        // actual nanosecond values depend on the wall clock.
        assert!(s.flame.contains_key("outer;inner"), "flame: {:?}", s.flame);
        assert!(s.flame.contains_key("outer"), "flame: {:?}", s.flame);
        let folded = s.folded_flame();
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!stack.is_empty());
            ns.parse::<u64>().expect("ns field parses");
        }
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn flame_exit_tolerates_out_of_order_drops() {
        let mut r = Recorder::new(Level::Full);
        r.flame_enter("a");
        r.flame_enter("b");
        r.flame_exit("a"); // dropped before its nested sibling
        r.flame_exit("b");
        let s = r.into_snapshot();
        assert!(s.flame.keys().all(|k| !k.is_empty()));
        // The stack fully unwound: no frame was left behind to pollute
        // unrelated paths (checked indirectly: no key nests b under b).
        assert!(!s.flame.contains_key("b;b"));
    }

    #[test]
    fn flame_merges_by_summing() {
        let mut a = Snapshot::default();
        a.flame.insert("x;y".into(), 10);
        let mut b = Snapshot::default();
        b.flame.insert("x;y".into(), 5);
        b.flame.insert("z".into(), 7);
        a.merge(&b);
        assert_eq!(a.flame["x;y"], 15);
        assert_eq!(a.flame["z"], 7);
        assert_eq!(a.folded_flame(), "x;y 15\nz 7\n");
    }

    #[test]
    fn decisions_are_stamped_with_the_current_epoch() {
        let mut r = Recorder::new(Level::Summary);
        r.record_decision(crate::DecisionRecord::new("knapsack"));
        r.add_counter("a.b", 1);
        r.mark_epoch(0);
        r.record_decision(crate::DecisionRecord::new("index_create"));
        assert_eq!(r.current_epoch(), 1);
        let s = r.into_snapshot();
        let epochs: Vec<(u64, &str)> = s.ledger.records().map(|d| (d.epoch, d.kind)).collect();
        assert_eq!(epochs, [(0, "knapsack"), (1, "index_create")]);
        assert!(!s.is_empty());
    }

    #[test]
    fn mark_epoch_snapshots_deltas_and_advances_baselines() {
        let mut r = Recorder::new(Level::Summary);
        r.add_counter("a.b", 3);
        r.observe("h.v", 1.0);
        r.record_span_sim("s.t", 2.5);
        r.mark_epoch(0);
        r.add_counter("a.b", 2);
        r.mark_epoch(1);
        r.mark_epoch(2); // all-zero delta: no point is pushed
        let s = r.into_snapshot();
        assert_eq!(s.series.len(), 2);
        let points: Vec<&crate::EpochPoint> = s.series.points().collect();
        assert_eq!(points[0].epoch, 0);
        assert_eq!(points[0].counter("a.b"), 3);
        assert_eq!(points[0].counter("h.v.count"), 1);
        assert_eq!(points[0].sim("s.t"), 2.5);
        assert_eq!(points[1].epoch, 1);
        assert_eq!(points[1].counter("a.b"), 2);
        assert_eq!(points[1].counter("h.v.count"), 0);
        assert_eq!(points[1].sim("s.t"), 0.0);
        assert_eq!(s.series.max_epoch(), Some(1));
    }

    #[test]
    fn flight_jsonl_merges_deterministically() {
        let mut a = Recorder::new(Level::Summary);
        a.record_decision(crate::DecisionRecord::new("knapsack").field("spent_pages", 4u64));
        a.add_counter("c.n", 1);
        a.mark_epoch(0);
        let mut b = Recorder::new(Level::Summary);
        b.record_decision(crate::DecisionRecord::new("budget_change").field("next", 9u64));
        b.add_counter("c.n", 2);
        b.mark_epoch(0);
        let mut merged = a.into_snapshot();
        merged.merge(&b.into_snapshot());
        assert_eq!(
            merged.flight_jsonl(),
            "{\"decision\":\"knapsack\",\"epoch\":0,\"spent_pages\":4}\n\
             {\"decision\":\"budget_change\",\"epoch\":0,\"next\":9}\n\
             {\"series_epoch\":0,\"counters\":{\"c.n\":1},\"sim_ms\":{}}\n\
             {\"series_epoch\":0,\"counters\":{\"c.n\":2},\"sim_ms\":{}}\n"
        );
        assert_eq!(merged.series.counter_at(0, "c.n"), 3);
    }

    #[test]
    fn capacity_hooks_bound_the_rings() {
        let mut r = Recorder::new(Level::Summary).with_ledger_capacity(2).with_series_capacity(1);
        for i in 0..4u64 {
            r.record_decision(crate::DecisionRecord::new("whatif_probe").field("i", i));
            r.add_counter("c.n", 1);
            r.mark_epoch(i);
        }
        let s = r.into_snapshot();
        assert_eq!(s.ledger.len(), 2);
        assert_eq!(s.ledger.evicted(), 2);
        assert_eq!(s.series.len(), 1);
        assert_eq!(s.series.evicted(), 3);
        assert_eq!(s.series.points().next().unwrap().epoch, 3);
    }

    #[test]
    fn prometheus_dump_shape() {
        let mut r = Recorder::new(Level::Full);
        r.add_counter("engine.whatif_calls", 12);
        r.set_gauge("threads", 4.0);
        r.record_span("organizer.knapsack", 2_000_000);
        let text = r.into_snapshot().prometheus();
        assert!(text.contains("# TYPE colt_engine_whatif_calls counter"));
        assert!(text.contains("colt_engine_whatif_calls 12"));
        assert!(text.contains("colt_threads 4"));
        assert!(text.contains("colt_organizer_knapsack_span_wall_seconds_total 0.002"));
        assert!(text.contains("colt_organizer_knapsack_span_wall_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("colt_organizer_knapsack_span_wall_us_count 1"));
    }
}
