//! # colt-harness
//!
//! Experiment driver for the COLT reproduction: runs a query stream
//! under a tuning policy (COLT, idealized OFFLINE, or no tuning),
//! charging tuning overhead exactly as the paper's methodology does, and
//! renders paper-style bucketed comparisons, what-if overhead series,
//! and time ratios.
//!
//! Entry points: [`Experiment`] for one run, [`parallel::run_cells`] to
//! fan independent run cells (policy arms × seeds × presets) across a
//! scoped thread pool with serial-identical output.

#![warn(missing_docs)]
// `deny` rather than `forbid`, alone among the library crates: a future
// lock-free recorder merge in `parallel` may need a scoped
// `#[allow(unsafe_code)]` with a safety comment, which `forbid` would
// make impossible without relaxing the whole crate. There is no unsafe
// code today; colt-analyze's unsafe-code lint independently verifies
// that.
#![deny(unsafe_code)]

pub mod flight;
pub mod metrics;
pub mod multiclient;
pub mod parallel;
pub mod report;
pub mod runner;

pub use flight::{
    explaining_knapsack, kind_label, parse_candidates, render_access_path_mix,
    render_decision_timeline, render_index_explanations, render_ledger_digest, KnapsackCandidate,
    ACCESS_PATH_COUNTERS, LEDGER_KIND_LABELS,
};
pub use metrics::{adaptation_latency, budget_utilization, convergence_point};
pub use multiclient::{interleave, split_round_robin};
pub use parallel::{default_threads, run_cells, run_cells_default, Cell, CellResult, ParallelReport};
pub use report::{
    bucket_rows, component_breakdown, emit_breakdown, emit_parallel_summary, render_breakdown,
    render_buckets, render_parallel_summary, render_whatif_series, time_ratio, Breakdown,
    BucketRow,
};
pub use runner::{Experiment, Policy, QuerySample, RunResult, WHATIF_COST_UNITS};
#[allow(deprecated)]
pub use runner::{run_colt, run_colt_with_strategy, run_none, run_offline};
