//! Experiment runner: drives a query stream through the engine under a
//! tuning policy and records per-query simulated times.
//!
//! The entry point is [`Experiment`]: pick a [`Policy`], then
//! [`Experiment::run`]. The accounting follows the paper's methodology
//! (§6.1):
//!
//! * **OFFLINE** — indices are selected and materialized before the run
//!   and none of that work is charged; per-query time is pure execution.
//! * **COLT** — the run starts with an empty on-line index set and every
//!   cost of tuning is charged to the stream: what-if optimizer calls
//!   (a constant optimizer charge per probe, cheap thanks to memo reuse)
//!   and index materialization (full build I/O, charged at the epoch
//!   boundary where the build happens — the paper's "index creation
//!   contributes significantly to the execution time during this
//!   period").
//! * **NONE** — no tuning at all; the pre-tuned baseline.

use colt_catalog::{ColRef, Database, PhysicalConfig};
use colt_core::json::Json;
use colt_core::{ColtConfig, ColtTuner, MaterializationStrategy, Trace};
use colt_engine::{Collect, Eqo, ExecError, Executor, Query};
use colt_offline::OfflineSelection;

/// Optimizer charge per what-if probe, in cost units. The prototype's
/// what-if optimizer reuses intermediate solutions of the initial
/// optimization, so a probe is far cheaper than a query; five cost
/// units ≈ reading five sequential pages.
pub const WHATIF_COST_UNITS: f64 = 5.0;

/// The tuning policy of one run.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// No tuning at all; the pre-tuned baseline.
    None,
    /// The idealized OFFLINE baseline: the optimal index set for the
    /// analyzed workload is materialized for free before the stream
    /// starts.
    Offline {
        /// Storage budget `B` in pages for the offline selection.
        budget_pages: u64,
    },
    /// COLT with an explicit materialization strategy.
    Colt(ColtConfig, MaterializationStrategy),
}

impl Policy {
    /// COLT under the paper's immediate materialization strategy.
    pub fn colt(config: ColtConfig) -> Policy {
        Policy::Colt(config, MaterializationStrategy::Immediate)
    }

    /// The policy's display label ("NONE", "OFFLINE", "COLT").
    pub fn label(&self) -> &'static str {
        match self {
            Policy::None => "NONE",
            Policy::Offline { .. } => "OFFLINE",
            Policy::Colt(..) => "COLT",
        }
    }
}

/// Per-query outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySample {
    /// Pure execution time (simulated ms).
    pub exec_millis: f64,
    /// Tuning overhead charged to this query (what-if + builds), ms.
    pub tuning_millis: f64,
    /// Result cardinality (sanity checking).
    pub rows: u64,
}

impl QuerySample {
    /// Total charged time.
    pub fn total_millis(&self) -> f64 {
        self.exec_millis + self.tuning_millis
    }
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The policy that produced the run.
    pub policy: Policy,
    /// Per-query samples, in stream order.
    pub samples: Vec<QuerySample>,
    /// COLT's epoch trace (empty for other policies).
    pub trace: Trace,
    /// Indices materialized when the run ended.
    pub final_indices: Vec<ColRef>,
    /// OFFLINE's selection, when applicable.
    pub offline: Option<OfflineSelection>,
    /// Number of relevant (restricted) columns that received accurate
    /// (what-if) profiling — COLT only.
    pub profiled_indices: usize,
    /// Metrics recorded during the run (empty under `COLT_OBS=off`).
    /// Deliberately *not* part of [`RunResult::summary_json`]: the
    /// summary is a deterministic artifact, while the snapshot carries
    /// wall-clock timings that vary run to run.
    pub obs: colt_obs::Snapshot,
}

impl RunResult {
    /// Total charged time of the run in simulated ms.
    pub fn total_millis(&self) -> f64 {
        self.samples.iter().map(|s| s.total_millis()).sum()
    }

    /// Total time over a sub-range of the stream.
    pub fn range_millis(&self, range: std::ops::Range<usize>) -> f64 {
        self.samples[range].iter().map(|s| s.total_millis()).sum()
    }

    /// Sum charged time per consecutive bucket of `size` queries — the
    /// bars of Figures 3 and 4.
    pub fn bucket_millis(&self, size: usize) -> Vec<f64> {
        self.samples.chunks(size).map(|c| c.iter().map(|s| s.total_millis()).sum()).collect()
    }

    /// Serialize a run summary (policy, totals, per-epoch what-if
    /// series, final indices) as pretty JSON — the EXPERIMENTS.md
    /// artifact format. The writer is deterministic: equal results
    /// render to identical bytes no matter which thread produced them.
    pub fn summary_json(&self) -> String {
        let colref = |c: &ColRef| {
            Json::obj(vec![
                ("table", Json::UInt(c.table.0 as u64)),
                ("column", Json::UInt(c.column as u64)),
            ])
        };
        Json::obj(vec![
            ("policy", Json::Str(self.policy.label().to_string())),
            ("queries", Json::UInt(self.samples.len() as u64)),
            ("total_millis", Json::Float(self.total_millis())),
            ("exec_millis", Json::Float(self.samples.iter().map(|s| s.exec_millis).sum::<f64>())),
            (
                "tuning_millis",
                Json::Float(self.samples.iter().map(|s| s.tuning_millis).sum::<f64>()),
            ),
            (
                "whatif_per_epoch",
                Json::Arr(self.trace.whatif_per_epoch().into_iter().map(Json::UInt).collect()),
            ),
            ("total_builds", Json::UInt(self.trace.total_builds() as u64)),
            ("final_indices", Json::Arr(self.final_indices.iter().map(colref).collect())),
            ("profiled_indices", Json::UInt(self.profiled_indices as u64)),
        ])
        .pretty()
    }
}

/// One experiment: a database, a query stream, and a policy.
///
/// The builder borrows the database and workload read-only, so many
/// experiments over the same data can run concurrently (see
/// [`crate::parallel`]); all mutable state (physical configuration,
/// tuner, optimizer memo) is created inside [`Experiment::run`] and
/// owned by the run.
///
/// ```no_run
/// use colt_harness::{Experiment, Policy};
/// # let db = colt_catalog::Database::new();
/// # let workload: Vec<colt_engine::Query> = Vec::new();
/// let colt = Experiment::new(&db, &workload)
///     .policy(Policy::colt(colt_core::ColtConfig::default()))
///     .run()
///     .expect("plans match their queries");
/// println!("{}", colt.summary_json());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment<'a> {
    db: &'a Database,
    workload: &'a [Query],
    policy: Policy,
    analyzed: Option<&'a [Query]>,
}

impl<'a> Experiment<'a> {
    /// An experiment over `workload`; the default policy is
    /// [`Policy::None`].
    pub fn new(db: &'a Database, workload: &'a [Query]) -> Self {
        Experiment { db, workload, policy: Policy::None, analyzed: None }
    }

    /// Select the tuning policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// For [`Policy::Offline`]: the queries handed to the offline
    /// advisor (defaults to the whole workload; the noise experiment
    /// passes only the base distribution's queries).
    pub fn analyzed(mut self, analyzed: &'a [Query]) -> Self {
        self.analyzed = Some(analyzed);
        self
    }

    /// Execute the run and collect per-query samples.
    ///
    /// A fresh [`colt_obs::Recorder`] is installed on this thread for
    /// the duration of the run and its snapshot lands in
    /// [`RunResult::obs`]. The recorder's level is inherited from the
    /// recorder already installed on the thread when there is one
    /// (callers — and tests — can thereby force a level), else taken
    /// from `COLT_OBS`; the previous recorder is restored afterwards.
    ///
    /// Fails only when a plan contradicts its query (see
    /// [`colt_engine::ExecError`]) — impossible for plans the run's own
    /// optimizer produced.
    pub fn run(&self) -> Result<RunResult, ExecError> {
        let prev = colt_obs::install(colt_obs::Recorder::new(colt_obs::sink_level()));
        let result = {
            let _span = colt_obs::span("harness.run");
            match &self.policy {
                Policy::None => self.run_untuned(PhysicalConfig::new(), Policy::None, None),
                Policy::Offline { budget_pages } => {
                    let analyzed = self.analyzed.unwrap_or(self.workload);
                    let selection = colt_offline::select(self.db, analyzed, *budget_pages);
                    let config = colt_offline::materialize(self.db, &selection);
                    self.run_untuned(config, self.policy.clone(), Some(selection))
                }
                Policy::Colt(config, strategy) => self.run_colt(config.clone(), *strategy),
            }
        };
        // Restore the previous recorder even on the error path, so a
        // failed run cannot leave a stale recorder installed.
        let snapshot = colt_obs::take().map(colt_obs::Recorder::into_snapshot).unwrap_or_default();
        if let Some(p) = prev {
            colt_obs::install(p);
        }
        let mut result = result?;
        result.obs = snapshot;
        Ok(result)
    }

    /// Shared path for the two untuned policies: run the stream under a
    /// fixed physical configuration, charging nothing but execution.
    fn run_untuned(
        &self,
        config: PhysicalConfig,
        policy: Policy,
        offline: Option<OfflineSelection>,
    ) -> Result<RunResult, ExecError> {
        let mut eqo = Eqo::new(self.db);
        let samples = self
            .workload
            .iter()
            .map(|q| {
                colt_obs::counter("harness.queries", 1);
                let plan = {
                    let _s = colt_obs::span("harness.optimize");
                    eqo.optimize(q, &config)
                };
                let res = {
                    let s = colt_obs::span("harness.execute");
                    let r = Executor::new(self.db, &config).execute(q, &plan, Collect::CountOnly)?.result;
                    s.sim_ms(r.millis);
                    r
                };
                Ok(QuerySample { exec_millis: res.millis, tuning_millis: 0.0, rows: res.row_count })
            })
            .collect::<Result<Vec<_>, ExecError>>()?;
        // Untuned runs close no epochs; flush the whole run into one
        // flight-recorder point so op-mix exhibits can still read it.
        colt_obs::epoch_mark(0);
        Ok(RunResult {
            policy,
            samples,
            trace: Trace::new(),
            final_indices: config.columns().collect(),
            offline,
            profiled_indices: 0,
            obs: colt_obs::Snapshot::default(),
        })
    }

    /// COLT: charge every cost of tuning to the stream.
    ///
    /// * `Immediate` — builds are charged to the query that triggered
    ///   the epoch boundary (the paper's accounting).
    /// * `IdleTime` — an idle window is assumed between epochs: deferred
    ///   builds happen there and are *not* charged to the stream, but
    ///   queries meanwhile run without the pending indices.
    /// * `Piggyback` — builds ride on later sequential scans; only the
    ///   sort and index writes are charged.
    fn run_colt(
        &self,
        colt_config: ColtConfig,
        strategy: MaterializationStrategy,
    ) -> Result<RunResult, ExecError> {
        let db = self.db;
        let mut physical = PhysicalConfig::new();
        let mut tuner = ColtTuner::with_strategy(colt_config.clone(), strategy);
        let mut eqo = Eqo::new(db);
        let mut samples = Vec::with_capacity(self.workload.len());
        let mut whatif_before = 0u64;

        for q in self.workload {
            colt_obs::counter("harness.queries", 1);
            let plan = {
                let _s = colt_obs::span("harness.optimize");
                eqo.optimize(q, &physical)
            };
            let res = {
                let s = colt_obs::span("harness.execute");
                let r = Executor::new(db, &physical).execute(q, &plan, Collect::CountOnly)?.result;
                s.sim_ms(r.millis);
                r
            };

            let tune = colt_obs::span("harness.tune");
            let step = tuner.on_query(db, &mut physical, &mut eqo, q, &plan);
            if strategy == MaterializationStrategy::IdleTime && step.epoch_closed {
                // Epoch boundary = assumed idle window; deferred builds
                // run in the background, uncharged.
                tuner.on_idle(db, &mut physical);
            }

            let whatif_now = eqo.counters().whatif_calls;
            let whatif_cost =
                (whatif_now - whatif_before) as f64 * WHATIF_COST_UNITS * db.cost.ms_per_cost_unit;
            whatif_before = whatif_now;
            let build_cost = db.cost.millis_of(&step.build_io);
            tune.sim_ms(whatif_cost + build_cost);
            drop(tune);

            samples.push(QuerySample {
                exec_millis: res.millis,
                tuning_millis: whatif_cost + build_cost,
                rows: res.row_count,
            });
        }

        // Flush the trailing partial epoch (queries after the last
        // boundary, plus the boundary query's tune charge, which lands
        // after the tuner's own mark) into the flight recorder.
        colt_obs::epoch_mark(tuner.epoch());

        Ok(RunResult {
            policy: Policy::Colt(colt_config, strategy),
            profiled_indices: tuner.profiler().profiled_index_count(),
            trace: tuner.trace().clone(),
            final_indices: physical.online_columns().collect(),
            offline: None,
            samples,
            obs: colt_obs::Snapshot::default(),
        })
    }
}

/// Run the stream with no tuning at all.
#[deprecated(note = "use Experiment::new(db, workload).run() (Policy::None is the default)")]
pub fn run_none(db: &Database, workload: &[Query]) -> Result<RunResult, ExecError> {
    Experiment::new(db, workload).run()
}

/// Run the stream under the idealized OFFLINE policy.
#[deprecated(
    note = "use Experiment::new(db, workload).policy(Policy::Offline { budget_pages }).analyzed(analyzed).run()"
)]
pub fn run_offline(
    db: &Database,
    workload: &[Query],
    analyzed: &[Query],
    budget_pages: u64,
) -> Result<RunResult, ExecError> {
    Experiment::new(db, workload).policy(Policy::Offline { budget_pages }).analyzed(analyzed).run()
}

/// Run the stream under COLT, charging all tuning overhead to it.
#[deprecated(note = "use Experiment::new(db, workload).policy(Policy::colt(config)).run()")]
pub fn run_colt(
    db: &Database,
    workload: &[Query],
    colt_config: ColtConfig,
) -> Result<RunResult, ExecError> {
    Experiment::new(db, workload).policy(Policy::colt(colt_config)).run()
}

/// Run the stream under COLT with an explicit materialization strategy.
#[deprecated(
    note = "use Experiment::new(db, workload).policy(Policy::Colt(config, strategy)).run()"
)]
pub fn run_colt_with_strategy(
    db: &Database,
    workload: &[Query],
    colt_config: ColtConfig,
    strategy: MaterializationStrategy,
) -> Result<RunResult, ExecError> {
    Experiment::new(db, workload).policy(Policy::Colt(colt_config, strategy)).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("id", ValueType::Int), Column::new("g", ValueType::Int)],
        ));
        db.insert_rows(t, (0..20_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 20)])));
        db.analyze_all();
        (db, t)
    }

    fn selective_stream(t: TableId, n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), (i * 13 % 20_000) as i64)]))
            .collect()
    }

    fn run_colt_budget(db: &Database, w: &[Query], budget: u64) -> RunResult {
        Experiment::new(db, w)
            .policy(Policy::colt(ColtConfig { storage_budget_pages: budget, ..Default::default() }))
            .run()
            .unwrap()
    }

    #[test]
    fn none_vs_offline_vs_colt_ordering() {
        let (db, t) = setup();
        let w = selective_stream(t, 200);
        let budget = db.index_estimate(ColRef::new(t, 0)).pages + 10;

        let none = Experiment::new(&db, &w).run().unwrap();
        let offline =
            Experiment::new(&db, &w).policy(Policy::Offline { budget_pages: budget }).run().unwrap();
        let colt = run_colt_budget(&db, &w, budget);

        assert_eq!(none.policy, Policy::None);
        assert_eq!(offline.policy.label(), "OFFLINE");
        assert_eq!(colt.policy.label(), "COLT");

        // OFFLINE (free index from query 0) must beat NONE decisively.
        assert!(offline.total_millis() < none.total_millis() * 0.2);
        // COLT converges: it must land between OFFLINE and NONE and well
        // below NONE.
        assert!(colt.total_millis() < none.total_millis() * 0.7,
            "colt {} vs none {}", colt.total_millis(), none.total_millis());
        assert!(colt.total_millis() >= offline.total_millis());
        // After convergence, COLT's tail matches OFFLINE closely.
        let tail = 150..200;
        let colt_tail = colt.range_millis(tail.clone());
        let off_tail = offline.range_millis(tail);
        assert!(
            (colt_tail - off_tail).abs() / off_tail < 0.1,
            "tail: colt {colt_tail} vs offline {off_tail}"
        );
        assert_eq!(colt.final_indices, vec![ColRef::new(t, 0)]);
    }

    #[test]
    fn colt_charges_tuning_overhead() {
        let (db, t) = setup();
        let w = selective_stream(t, 100);
        let colt = run_colt_budget(&db, &w, 100_000);
        let tuning: f64 = colt.samples.iter().map(|s| s.tuning_millis).sum();
        assert!(tuning > 0.0, "what-if and build overhead must be charged");
        assert!(colt.trace.total_whatif() > 0);
        assert!(colt.profiled_indices >= 1);
    }

    #[test]
    fn bucket_sums_cover_everything() {
        let (db, t) = setup();
        let w = selective_stream(t, 100);
        let none = Experiment::new(&db, &w).run().unwrap();
        let buckets = none.bucket_millis(30);
        assert_eq!(buckets.len(), 4); // 30+30+30+10
        let sum: f64 = buckets.iter().sum();
        assert!((sum - none.total_millis()).abs() < 1e-6);
    }

    #[test]
    fn summary_json_round_trips() {
        let (db, t) = setup();
        let w = selective_stream(t, 60);
        let colt = run_colt_budget(&db, &w, 100_000);
        let json = colt.summary_json();
        let v = colt_core::json::parse(&json).unwrap();
        assert_eq!(v.get("policy").and_then(Json::as_str), Some("COLT"));
        assert_eq!(v.get("queries").and_then(Json::as_u64), Some(60));
        assert!(v.get("total_millis").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(v.get("whatif_per_epoch").is_some_and(Json::is_array));
    }

    #[test]
    fn results_identical_rows_across_policies() {
        let (db, t) = setup();
        let w = selective_stream(t, 60);
        let budget = 100_000;
        let none = Experiment::new(&db, &w).run().unwrap();
        let offline =
            Experiment::new(&db, &w).policy(Policy::Offline { budget_pages: budget }).run().unwrap();
        let colt = run_colt_budget(&db, &w, budget);
        for i in 0..w.len() {
            assert_eq!(none.samples[i].rows, offline.samples[i].rows, "query {i}");
            assert_eq!(none.samples[i].rows, colt.samples[i].rows, "query {i}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_run() {
        let (db, t) = setup();
        let w = selective_stream(t, 30);
        let a = run_none(&db, &w).unwrap();
        let b = Experiment::new(&db, &w).run().unwrap();
        assert_eq!(a.samples, b.samples);
        let c =
            run_colt(&db, &w, ColtConfig { storage_budget_pages: 100_000, ..Default::default() })
                .unwrap();
        let d = run_colt_budget(&db, &w, 100_000);
        assert_eq!(c.samples, d.samples);
        let e = run_offline(&db, &w, &w, 100_000).unwrap();
        assert_eq!(e.policy.label(), "OFFLINE");
        let f = run_colt_with_strategy(
            &db,
            &w,
            ColtConfig { storage_budget_pages: 100_000, ..Default::default() },
            MaterializationStrategy::Immediate,
        )
        .unwrap();
        assert_eq!(f.samples, d.samples);
    }
}
