//! Experiment runner: drives a query stream through the engine under a
//! tuning policy and records per-query simulated times.
//!
//! The accounting follows the paper's methodology (§6.1):
//!
//! * **OFFLINE** — indices are selected and materialized before the run
//!   and none of that work is charged; per-query time is pure execution.
//! * **COLT** — the run starts with an empty on-line index set and every
//!   cost of tuning is charged to the stream: what-if optimizer calls
//!   (a constant optimizer charge per probe, cheap thanks to memo reuse)
//!   and index materialization (full build I/O, charged at the epoch
//!   boundary where the build happens — the paper's "index creation
//!   contributes significantly to the execution time during this
//!   period").
//! * **NONE** — no tuning at all; the pre-tuned baseline.

use colt_catalog::{ColRef, Database, PhysicalConfig};
use colt_core::{ColtConfig, ColtTuner, MaterializationStrategy, Trace};
use colt_engine::{Eqo, Executor, Query};
use colt_offline::OfflineSelection;
use serde::{Deserialize, Serialize};

/// Optimizer charge per what-if probe, in cost units. The prototype's
/// what-if optimizer reuses intermediate solutions of the initial
/// optimization, so a probe is far cheaper than a query; five cost
/// units ≈ reading five sequential pages.
pub const WHATIF_COST_UNITS: f64 = 5.0;

/// Per-query outcome of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuerySample {
    /// Pure execution time (simulated ms).
    pub exec_millis: f64,
    /// Tuning overhead charged to this query (what-if + builds), ms.
    pub tuning_millis: f64,
    /// Result cardinality (sanity checking).
    pub rows: u64,
}

impl QuerySample {
    /// Total charged time.
    pub fn total_millis(&self) -> f64 {
        self.exec_millis + self.tuning_millis
    }
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Label of the policy ("COLT", "OFFLINE", "NONE").
    pub policy: &'static str,
    /// Per-query samples, in stream order.
    pub samples: Vec<QuerySample>,
    /// COLT's epoch trace (empty for other policies).
    pub trace: Trace,
    /// Indices materialized when the run ended.
    pub final_indices: Vec<ColRef>,
    /// OFFLINE's selection, when applicable.
    pub offline: Option<OfflineSelection>,
    /// Number of relevant (restricted) columns that received accurate
    /// (what-if) profiling — COLT only.
    pub profiled_indices: usize,
}

impl RunResult {
    /// Total charged time of the run in simulated ms.
    pub fn total_millis(&self) -> f64 {
        self.samples.iter().map(|s| s.total_millis()).sum()
    }

    /// Total time over a sub-range of the stream.
    pub fn range_millis(&self, range: std::ops::Range<usize>) -> f64 {
        self.samples[range].iter().map(|s| s.total_millis()).sum()
    }

    /// Sum charged time per consecutive bucket of `size` queries — the
    /// bars of Figures 3 and 4.
    pub fn bucket_millis(&self, size: usize) -> Vec<f64> {
        self.samples.chunks(size).map(|c| c.iter().map(|s| s.total_millis()).sum()).collect()
    }

    /// Serialize a run summary (policy, totals, per-epoch what-if
    /// series, final indices) as pretty JSON — the EXPERIMENTS.md
    /// artifact format.
    pub fn summary_json(&self) -> String {
        let summary = serde_json::json!({
            "policy": self.policy,
            "queries": self.samples.len(),
            "total_millis": self.total_millis(),
            "exec_millis": self.samples.iter().map(|s| s.exec_millis).sum::<f64>(),
            "tuning_millis": self.samples.iter().map(|s| s.tuning_millis).sum::<f64>(),
            "whatif_per_epoch": self.trace.whatif_per_epoch(),
            "total_builds": self.trace.total_builds(),
            "final_indices": self.final_indices,
            "profiled_indices": self.profiled_indices,
        });
        serde_json::to_string_pretty(&summary).expect("summary serializes")
    }
}

/// Run the stream with no tuning at all.
pub fn run_none(db: &Database, workload: &[Query]) -> RunResult {
    let config = PhysicalConfig::new();
    let mut eqo = Eqo::new(db);
    let samples = workload
        .iter()
        .map(|q| {
            let plan = eqo.optimize(q, &config);
            let res = Executor::new(db, &config).execute(q, &plan);
            QuerySample { exec_millis: res.millis, tuning_millis: 0.0, rows: res.row_count }
        })
        .collect();
    RunResult {
        policy: "NONE",
        samples,
        trace: Trace::new(),
        final_indices: Vec::new(),
        offline: None,
        profiled_indices: 0,
    }
}

/// Run the stream under the idealized OFFLINE policy: the optimal index
/// set for `analyzed` (usually the whole workload; the noise experiment
/// passes only the base distribution's queries) is materialized for
/// free before the stream starts.
pub fn run_offline(
    db: &Database,
    workload: &[Query],
    analyzed: &[Query],
    budget_pages: u64,
) -> RunResult {
    let selection = colt_offline::select(db, analyzed, budget_pages);
    let config = colt_offline::materialize(db, &selection);
    let mut eqo = Eqo::new(db);
    let samples = workload
        .iter()
        .map(|q| {
            let plan = eqo.optimize(q, &config);
            let res = Executor::new(db, &config).execute(q, &plan);
            QuerySample { exec_millis: res.millis, tuning_millis: 0.0, rows: res.row_count }
        })
        .collect();
    RunResult {
        policy: "OFFLINE",
        samples,
        trace: Trace::new(),
        final_indices: config.columns().collect(),
        offline: Some(selection),
        profiled_indices: 0,
    }
}

/// Run the stream under COLT, charging all tuning overhead to it.
pub fn run_colt(db: &Database, workload: &[Query], colt_config: ColtConfig) -> RunResult {
    run_colt_with_strategy(db, workload, colt_config, MaterializationStrategy::Immediate)
}

/// Run the stream under COLT with an explicit materialization strategy.
///
/// * `Immediate` — builds are charged to the query that triggered the
///   epoch boundary (the paper's accounting).
/// * `IdleTime` — an idle window is assumed between epochs: deferred
///   builds happen there and are *not* charged to the stream, but
///   queries meanwhile run without the pending indices.
/// * `Piggyback` — builds ride on later sequential scans; only the sort
///   and index writes are charged.
pub fn run_colt_with_strategy(
    db: &Database,
    workload: &[Query],
    colt_config: ColtConfig,
    strategy: MaterializationStrategy,
) -> RunResult {
    let mut physical = PhysicalConfig::new();
    let mut tuner = ColtTuner::with_strategy(colt_config, strategy);
    let mut eqo = Eqo::new(db);
    let mut samples = Vec::with_capacity(workload.len());
    let mut whatif_before = 0u64;

    for q in workload {
        let plan = eqo.optimize(q, &physical);
        let res = Executor::new(db, &physical).execute(q, &plan);

        let step = tuner.on_query(db, &mut physical, &mut eqo, q, &plan);
        if strategy == MaterializationStrategy::IdleTime && step.epoch_closed {
            // Epoch boundary = assumed idle window; deferred builds run
            // in the background, uncharged.
            tuner.on_idle(db, &mut physical);
        }

        let whatif_now = eqo.counters().whatif_calls;
        let whatif_cost =
            (whatif_now - whatif_before) as f64 * WHATIF_COST_UNITS * db.cost.ms_per_cost_unit;
        whatif_before = whatif_now;
        let build_cost = db.cost.millis_of(&step.build_io);

        samples.push(QuerySample {
            exec_millis: res.millis,
            tuning_millis: whatif_cost + build_cost,
            rows: res.row_count,
        });
    }

    RunResult {
        policy: "COLT",
        profiled_indices: tuner.profiler().profiled_index_count(),
        trace: tuner.trace().clone(),
        final_indices: physical.online_columns().collect(),
        offline: None,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("id", ValueType::Int), Column::new("g", ValueType::Int)],
        ));
        db.insert_rows(t, (0..20_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 20)])));
        db.analyze_all();
        (db, t)
    }

    fn selective_stream(t: TableId, n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), (i * 13 % 20_000) as i64)]))
            .collect()
    }

    #[test]
    fn none_vs_offline_vs_colt_ordering() {
        let (db, t) = setup();
        let w = selective_stream(t, 200);
        let budget = db.index_estimate(ColRef::new(t, 0)).pages + 10;

        let none = run_none(&db, &w);
        let offline = run_offline(&db, &w, &w, budget);
        let colt = run_colt(&db, &w, ColtConfig { storage_budget_pages: budget, ..Default::default() });

        // OFFLINE (free index from query 0) must beat NONE decisively.
        assert!(offline.total_millis() < none.total_millis() * 0.2);
        // COLT converges: it must land between OFFLINE and NONE and well
        // below NONE.
        assert!(colt.total_millis() < none.total_millis() * 0.7,
            "colt {} vs none {}", colt.total_millis(), none.total_millis());
        assert!(colt.total_millis() >= offline.total_millis());
        // After convergence, COLT's tail matches OFFLINE closely.
        let tail = 150..200;
        let colt_tail = colt.range_millis(tail.clone());
        let off_tail = offline.range_millis(tail);
        assert!(
            (colt_tail - off_tail).abs() / off_tail < 0.1,
            "tail: colt {colt_tail} vs offline {off_tail}"
        );
        assert_eq!(colt.final_indices, vec![ColRef::new(t, 0)]);
    }

    #[test]
    fn colt_charges_tuning_overhead() {
        let (db, t) = setup();
        let w = selective_stream(t, 100);
        let colt = run_colt(&db, &w, ColtConfig { storage_budget_pages: 100_000, ..Default::default() });
        let tuning: f64 = colt.samples.iter().map(|s| s.tuning_millis).sum();
        assert!(tuning > 0.0, "what-if and build overhead must be charged");
        assert!(colt.trace.total_whatif() > 0);
        assert!(colt.profiled_indices >= 1);
    }

    #[test]
    fn bucket_sums_cover_everything() {
        let (db, t) = setup();
        let w = selective_stream(t, 100);
        let none = run_none(&db, &w);
        let buckets = none.bucket_millis(30);
        assert_eq!(buckets.len(), 4); // 30+30+30+10
        let sum: f64 = buckets.iter().sum();
        assert!((sum - none.total_millis()).abs() < 1e-6);
    }

    #[test]
    fn summary_json_round_trips() {
        let (db, t) = setup();
        let w = selective_stream(t, 60);
        let colt = run_colt(&db, &w, ColtConfig { storage_budget_pages: 100_000, ..Default::default() });
        let json = colt.summary_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["policy"], "COLT");
        assert_eq!(v["queries"], 60);
        assert!(v["total_millis"].as_f64().unwrap() > 0.0);
        assert!(v["whatif_per_epoch"].is_array());
    }

    #[test]
    fn results_identical_rows_across_policies() {
        let (db, t) = setup();
        let w = selective_stream(t, 60);
        let budget = 100_000;
        let none = run_none(&db, &w);
        let offline = run_offline(&db, &w, &w, budget);
        let colt = run_colt(&db, &w, ColtConfig { storage_budget_pages: budget, ..Default::default() });
        for i in 0..w.len() {
            assert_eq!(none.samples[i].rows, offline.samples[i].rows, "query {i}");
            assert_eq!(none.samples[i].rows, colt.samples[i].rows, "query {i}");
        }
    }
}
