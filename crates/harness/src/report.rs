//! Paper-style textual rendering of the experiment results.
//!
//! The figures of the paper are stacked bar charts: per 50-query bucket,
//! a grey region for the faster technique's time, and a black (COLT
//! extra) or white (OFFLINE extra) region for the slower one's excess.
//! We render the same information as aligned text tables plus ASCII
//! bars, which diff cleanly and paste into EXPERIMENTS.md.

use crate::parallel::ParallelReport;
use crate::runner::RunResult;

/// One row of a Figure-3/4-style comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketRow {
    /// Index of the last query in the bucket (1-based, as in the paper's
    /// x-axis labels: 50, 100, …).
    pub upto: usize,
    /// Total COLT time in the bucket (ms).
    pub colt: f64,
    /// Total OFFLINE time in the bucket (ms).
    pub offline: f64,
}

impl BucketRow {
    /// Time of the faster technique (the grey region).
    pub fn minimum(&self) -> f64 {
        self.colt.min(self.offline)
    }

    /// COLT's excess over OFFLINE (the black region), 0 when COLT wins.
    pub fn colt_extra(&self) -> f64 {
        (self.colt - self.offline).max(0.0)
    }

    /// OFFLINE's excess over COLT (the white region), 0 when it wins.
    pub fn offline_extra(&self) -> f64 {
        (self.offline - self.colt).max(0.0)
    }
}

/// Bucket two runs into Figure-3/4 rows.
pub fn bucket_rows(colt: &RunResult, offline: &RunResult, bucket: usize) -> Vec<BucketRow> {
    let a = colt.bucket_millis(bucket);
    let b = offline.bucket_millis(bucket);
    a.iter()
        .zip(&b)
        .enumerate()
        .map(|(i, (&c, &o))| BucketRow { upto: (i + 1) * bucket, colt: c, offline: o })
        .collect()
}

/// Render rows as an aligned table with an ASCII stacked bar.
pub fn render_buckets(title: &str, rows: &[BucketRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str("  query   minimum     COLT-extra  OFF-extra   bar (#=min, B=COLT extra, o=OFFLINE extra)\n");
    let max = rows.iter().map(|r| r.colt.max(r.offline)).fold(1.0f64, f64::max);
    for r in rows {
        let scale = 48.0 / max;
        let g = (r.minimum() * scale).round() as usize;
        let b = (r.colt_extra() * scale).round() as usize;
        let w = (r.offline_extra() * scale).round() as usize;
        out.push_str(&format!(
            "  {:>5}   {:>9.1}   {:>9.1}   {:>9.1}   {}{}{}\n",
            r.upto,
            r.minimum(),
            r.colt_extra(),
            r.offline_extra(),
            "#".repeat(g),
            "B".repeat(b),
            "o".repeat(w),
        ));
    }
    let colt_total: f64 = rows.iter().map(|r| r.colt).sum();
    let off_total: f64 = rows.iter().map(|r| r.offline).sum();
    out.push_str(&format!(
        "  total: COLT {colt_total:.1} ms, OFFLINE {off_total:.1} ms ({:+.1}% for COLT)\n",
        (colt_total / off_total - 1.0) * 100.0
    ));
    out
}

/// Render a per-epoch what-if series (Figure 5) as an ASCII chart.
pub fn render_whatif_series(title: &str, series: &[u64], max_budget: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("  epoch  #what-if (budget {max_budget})\n"));
    for (i, &v) in series.iter().enumerate() {
        out.push_str(&format!("  {:>5}  {:>3}  {}\n", i, v, "*".repeat(v as usize)));
    }
    out
}

/// Compute the COLT/OFFLINE execution-time ratio over a range (the
/// metric of Figure 6).
pub fn time_ratio(colt: &RunResult, offline: &RunResult, skip: usize) -> f64 {
    let c = colt.range_millis(skip..colt.samples.len());
    let o = offline.range_millis(skip..offline.samples.len());
    c / o
}

/// Render a parallel batch's per-cell progress and wall-clock/speedup
/// metrics. Contains real wall-clock times, so the bench binaries print
/// it to **stderr** — stdout artifacts stay byte-identical across
/// thread counts.
pub fn render_parallel_summary(title: &str, report: &ParallelReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("  threads: {}\n", report.threads));
    for c in &report.cells {
        out.push_str(&format!(
            "  {:<28} {:>7}  {:>9.0} ms wall  {:>12.1} ms simulated\n",
            c.label,
            c.result.policy.label(),
            c.cell_millis,
            c.result.total_millis(),
        ));
    }
    out.push_str(&format!(
        "  wall clock {:.0} ms, serial-equivalent {:.0} ms, speedup {:.2}x\n",
        report.wall_millis,
        report.serial_millis(),
        report.speedup(),
    ));
    out
}

/// Per-component wall-clock breakdown of one run, from its metrics
/// snapshot's top-level `harness.*` spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Optimizer (plan search) wall ms.
    pub optimize_ms: f64,
    /// Executor wall ms.
    pub execute_ms: f64,
    /// Tuner wall ms (profiling + epoch closing + builds).
    pub tune_ms: f64,
    /// Unattributed remainder of the run (loop overhead, setup), ≥ 0.
    pub other_ms: f64,
    /// Total measured run wall ms (the `harness.run` span).
    pub total_ms: f64,
}

impl Breakdown {
    /// Sum of the attributed components plus the remainder. Equals
    /// `total_ms` by construction unless clock skew made the component
    /// spans overshoot the enclosing run span.
    pub fn sum_ms(&self) -> f64 {
        self.optimize_ms + self.execute_ms + self.tune_ms + self.other_ms
    }
}

/// Fold a run's span timings into a per-component breakdown. Empty
/// snapshots (runs under `COLT_OBS=off`) yield an all-zero breakdown.
pub fn component_breakdown(run: &RunResult) -> Breakdown {
    let optimize_ms = run.obs.span_wall_ms("harness.optimize");
    let execute_ms = run.obs.span_wall_ms("harness.execute");
    let tune_ms = run.obs.span_wall_ms("harness.tune");
    let total_ms = run.obs.span_wall_ms("harness.run");
    let other_ms = (total_ms - optimize_ms - execute_ms - tune_ms).max(0.0);
    Breakdown { optimize_ms, execute_ms, tune_ms, other_ms, total_ms }
}

/// Render per-component time breakdowns for a batch of labelled runs as
/// an aligned table. Wall-clock numbers — stderr only, like
/// [`render_parallel_summary`].
pub fn render_breakdown(title: &str, runs: &[(&str, &RunResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(
        "  cell                          optimize     execute        tune       other       total\n",
    );
    for (label, run) in runs {
        let b = component_breakdown(run);
        out.push_str(&format!(
            "  {:<28} {:>8.1} ms {:>8.1} ms {:>8.1} ms {:>8.1} ms {:>8.1} ms\n",
            label, b.optimize_ms, b.execute_ms, b.tune_ms, b.other_ms, b.total_ms,
        ));
    }
    out
}

/// Emit a parallel batch's progress through the event sink: one
/// `parallel_batch` event with the wall-clock/speedup numbers that
/// [`render_parallel_summary`] renders. All bench binaries report batch
/// completion through this one path, so the stderr format is uniform.
pub fn emit_parallel_summary(title: &str, report: &ParallelReport) {
    colt_obs::progress(
        colt_obs::Event::new("parallel_batch")
            .field("title", title)
            .field("threads", report.threads)
            .field("cells", report.cells.len())
            .field("wall_ms", report.wall_millis)
            .field("serial_ms", report.serial_millis())
            .field("speedup", report.speedup()),
    );
}

/// Emit one run's per-component breakdown through the event sink.
pub fn emit_breakdown(label: &str, run: &RunResult) {
    let b = component_breakdown(run);
    colt_obs::progress(
        colt_obs::Event::new("breakdown")
            .field("label", label)
            .field("optimize_ms", b.optimize_ms)
            .field("execute_ms", b.execute_ms)
            .field("tune_ms", b.tune_ms)
            .field("other_ms", b.other_ms)
            .field("total_ms", b.total_ms),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::CellResult;
    use crate::runner::{Policy, QuerySample};
    use colt_core::Trace;

    fn fake_run(times: &[f64]) -> RunResult {
        RunResult {
            policy: Policy::None,
            samples: times
                .iter()
                .map(|&t| QuerySample { exec_millis: t, tuning_millis: 0.0, rows: 0 })
                .collect(),
            trace: Trace::new(),
            final_indices: Vec::new(),
            offline: None,
            profiled_indices: 0,
            obs: colt_obs::Snapshot::default(),
        }
    }

    #[test]
    fn bucket_rows_regions() {
        let colt = fake_run(&[10.0, 10.0, 5.0, 5.0]);
        let off = fake_run(&[5.0, 5.0, 10.0, 10.0]);
        let rows = bucket_rows(&colt, &off, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].minimum(), 10.0);
        assert_eq!(rows[0].colt_extra(), 10.0);
        assert_eq!(rows[0].offline_extra(), 0.0);
        assert_eq!(rows[1].colt_extra(), 0.0);
        assert_eq!(rows[1].offline_extra(), 10.0);
    }

    #[test]
    fn render_includes_totals() {
        let colt = fake_run(&[10.0, 10.0]);
        let off = fake_run(&[5.0, 5.0]);
        let rows = bucket_rows(&colt, &off, 1);
        let s = render_buckets("Test", &rows);
        assert!(s.contains("COLT 20.0 ms"));
        assert!(s.contains("OFFLINE 10.0 ms"));
        assert!(s.contains("+100.0%"));
    }

    #[test]
    fn ratio_skips_warmup() {
        let colt = fake_run(&[100.0, 10.0, 10.0]);
        let off = fake_run(&[1.0, 10.0, 10.0]);
        assert!((time_ratio(&colt, &off, 1) - 1.0).abs() < 1e-9);
        assert!(time_ratio(&colt, &off, 0) > 1.0);
    }

    #[test]
    fn parallel_summary_renders_speedup() {
        let report = ParallelReport {
            cells: vec![
                CellResult { label: "a".into(), result: fake_run(&[1.0]), cell_millis: 300.0 },
                CellResult { label: "b".into(), result: fake_run(&[2.0]), cell_millis: 100.0 },
            ],
            wall_millis: 200.0,
            threads: 2,
        };
        let s = render_parallel_summary("Batch", &report);
        assert!(s.contains("threads: 2"));
        assert!(s.contains("speedup 2.00x"));
        assert!(s.contains("serial-equivalent 400 ms"));
    }

    #[test]
    fn whatif_series_renders() {
        let s = render_whatif_series("Fig5", &[20, 3, 0], 20);
        assert!(s.contains("epoch"));
        assert!(s.contains("********************"));
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let mut run = fake_run(&[1.0]);
        let mut r = colt_obs::Recorder::new(colt_obs::Level::Summary);
        r.record_span("harness.optimize", 2_000_000);
        r.record_span("harness.execute", 5_000_000);
        r.record_span("harness.tune", 1_000_000);
        r.record_span("harness.run", 10_000_000);
        run.obs = r.into_snapshot();
        let b = component_breakdown(&run);
        assert!((b.optimize_ms - 2.0).abs() < 1e-9);
        assert!((b.execute_ms - 5.0).abs() < 1e-9);
        assert!((b.tune_ms - 1.0).abs() < 1e-9);
        assert!((b.other_ms - 2.0).abs() < 1e-9);
        assert!((b.sum_ms() - b.total_ms).abs() < 1e-9);
        let table = render_breakdown("Breakdown", &[("COLT", &run)]);
        assert!(table.contains("COLT"));
        assert!(table.contains("10.0 ms"));
    }

    #[test]
    fn breakdown_of_empty_snapshot_is_zero() {
        let run = fake_run(&[1.0]);
        let b = component_breakdown(&run);
        assert_eq!(b.sum_ms(), 0.0);
        assert_eq!(b.total_ms, 0.0);
    }

    #[test]
    fn breakdown_clamps_overshoot() {
        // Component spans can overshoot the enclosing run span by a few
        // clock ticks; `other` must clamp at zero rather than go
        // negative.
        let mut run = fake_run(&[1.0]);
        let mut r = colt_obs::Recorder::new(colt_obs::Level::Summary);
        r.record_span("harness.execute", 11_000_000);
        r.record_span("harness.run", 10_000_000);
        run.obs = r.into_snapshot();
        assert_eq!(component_breakdown(&run).other_ms, 0.0);
    }
}
