//! Exhibit-grade markdown rendering of the flight recorder: the
//! per-epoch decision timeline, the "why each index exists" audit, and
//! the per-epoch access-path mix.
//!
//! Everything rendered here is deterministic — epochs, page counts,
//! benefit values, and simulated milliseconds only, never the wall
//! clock — so the output pastes into EXPERIMENTS.md and diffs cleanly
//! in CI at any thread count and `COLT_OBS` level.

use crate::runner::RunResult;
use colt_obs::{DecisionRecord, Snapshot};

/// One parsed entry of a knapsack record's `candidates` field
/// (`index:size_pages:net_benefit|...`).
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackCandidate {
    /// The candidate index, rendered `t<table>.c<column>`.
    pub index: String,
    /// Size in budget pages.
    pub size_pages: u64,
    /// Net-benefit value the knapsack saw.
    pub value: f64,
}

/// Parse a knapsack record's `candidates` field.
pub fn parse_candidates(record: &DecisionRecord) -> Vec<KnapsackCandidate> {
    let Some(s) = record.get_str("candidates") else { return Vec::new() };
    s.split('|')
        .filter(|part| !part.is_empty())
        .filter_map(|part| {
            let mut it = part.splitn(3, ':');
            Some(KnapsackCandidate {
                index: it.next()?.to_string(),
                size_pages: it.next()?.parse().ok()?,
                value: it.next()?.parse().ok()?,
            })
        })
        .collect()
}

/// The knapsack record that explains a create/drop at `epoch`: the last
/// knapsack solved at or before that epoch (piggybacked builds execute
/// epochs after the solve that chose them).
pub fn explaining_knapsack(obs: &Snapshot, epoch: u64) -> Option<&DecisionRecord> {
    obs.ledger.of_kind("knapsack").filter(|r| r.epoch <= epoch).last()
}

/// Render the per-epoch decision timeline: one row per epoch on the
/// flight recorder's axis, folding the trace's reorganization outcome
/// with the ledger's knapsack solve.
pub fn render_decision_timeline(run: &RunResult) -> String {
    let axis = run.trace.epoch_axis(&run.obs);
    let mut out = String::from("## Per-epoch decision timeline\n\n");
    out.push_str(
        "| epoch | what-if used/limit | next budget | ratio | knapsack spent/budget (pages) | created | dropped | build (sim ms) |\n",
    );
    out.push_str("|------:|-------------------:|------------:|------:|------------------------------:|---|---|---:|\n");
    for e in 0..axis {
        let (used, limit, next_budget, ratio, created, dropped, build) =
            match run.trace.epochs.get(e as usize) {
                Some(r) => (
                    r.whatif_used,
                    r.whatif_limit,
                    r.next_budget,
                    r.ratio,
                    join_cols(&r.created),
                    join_cols(&r.dropped),
                    r.build_millis,
                ),
                None => (0, 0, 0, 0.0, String::new(), String::new(), 0.0),
            };
        let knapsack = run
            .obs
            .ledger
            .of_kind("knapsack")
            .filter(|r| r.epoch == e)
            .last()
            .map(|r| {
                format!(
                    "{}/{}",
                    r.get_u64("spent_pages").unwrap_or(0),
                    r.get_u64("budget_pages").unwrap_or(0)
                )
            })
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "| {e} | {used}/{limit} | {next_budget} | {ratio:.3} | {knapsack} | {} | {} | {build:.1} |\n",
            dash_if_empty(&created),
            dash_if_empty(&dropped),
        ));
    }
    out
}

/// Render the "why each index exists" audit: every `index_create` /
/// `index_drop` ledger record joined to the knapsack solve that
/// produced it, with the index's size and net-benefit value as the
/// knapsack saw them.
pub fn render_index_explanations(run: &RunResult) -> String {
    let mut out = String::from("## Why each index exists\n\n");
    out.push_str(
        "| epoch | action | index | via | build (sim ms) | knapsack value | size (pages) | budget spent/total |\n",
    );
    out.push_str("|------:|---|---|---|---:|---:|---:|---:|\n");
    let mut rows = 0usize;
    for rec in run.obs.ledger.records() {
        let action = match rec.kind {
            "index_create" => "create",
            "index_drop" => "drop",
            _ => continue,
        };
        rows += 1;
        let index = rec.get_str("index").unwrap_or("?");
        let via = rec.get_str("via").unwrap_or("?");
        let build = rec.get_f64("build_millis").unwrap_or(0.0);
        let (value, size, spent) = match explaining_knapsack(&run.obs, rec.epoch) {
            Some(k) => {
                let cand = parse_candidates(k).into_iter().find(|c| c.index == index);
                (
                    cand.as_ref().map_or("—".to_string(), |c| format!("{:.3}", c.value)),
                    cand.as_ref().map_or("—".to_string(), |c| c.size_pages.to_string()),
                    format!(
                        "{}/{}",
                        k.get_u64("spent_pages").unwrap_or(0),
                        k.get_u64("budget_pages").unwrap_or(0)
                    ),
                )
            }
            None => ("—".to_string(), "—".to_string(), "—".to_string()),
        };
        out.push_str(&format!(
            "| {} | {action} | {index} | {via} | {build:.1} | {value} | {size} | {spent} |\n",
            rec.epoch
        ));
    }
    if rows == 0 {
        out.push_str("| — | — | — | — | — | — | — | — |\n");
    }
    out
}

/// Every decision-ledger kind with its human label, in render order.
/// The kinds are written out literally — not borrowed from
/// `colt_obs::LEDGER_KINDS` — so the `decision-kind` lint can hold this
/// renderer to the full kind set; the
/// `ledger_kind_labels_mirror_the_obs_table` test keeps the two tables
/// in lockstep.
pub const LEDGER_KIND_LABELS: &[(&str, &str)] = &[
    ("whatif_probe", "what-if probe"),
    ("whatif_skip", "what-if skip"),
    ("cluster_assign", "cluster assignment"),
    ("knapsack", "knapsack solve"),
    ("index_create", "index created"),
    ("index_drop", "index dropped"),
    ("budget_change", "budget change"),
];

/// Human label for a ledger record kind (the kind itself when unknown).
pub fn kind_label(kind: &str) -> &str {
    LEDGER_KIND_LABELS.iter().find(|(k, _)| *k == kind).map_or(kind, |(_, label)| *label)
}

/// Render the ledger digest: one row per decision kind — label, record
/// count, and epoch span. Every kind is always present, so a kind whose
/// records stopped flowing shows up as a zero row in the diff instead
/// of silently vanishing from the exhibit.
pub fn render_ledger_digest(obs: &Snapshot) -> String {
    let mut out = String::from("## Decision-ledger digest\n\n");
    out.push_str("| kind | decisions | first epoch | last epoch |\n");
    out.push_str("|---|---:|---:|---:|\n");
    for (kind, label) in LEDGER_KIND_LABELS {
        let mut count = 0u64;
        let mut first: Option<u64> = None;
        let mut last: Option<u64> = None;
        for r in obs.ledger.of_kind(kind) {
            count += 1;
            first = Some(first.map_or(r.epoch, |f| f.min(r.epoch)));
            last = Some(last.map_or(r.epoch, |l| l.max(r.epoch)));
        }
        let dash = "—".to_string();
        out.push_str(&format!(
            "| {label} | {count} | {} | {} |\n",
            first.map_or_else(|| dash.clone(), |e| e.to_string()),
            last.map_or_else(|| dash.clone(), |e| e.to_string()),
        ));
    }
    out
}

/// The access-path counters the mix exhibit tracks, in column order.
pub const ACCESS_PATH_COUNTERS: &[(&str, &str)] = &[
    ("engine.op.seq_scan", "seq scan"),
    ("engine.op.index_scan", "index scan"),
    ("engine.op.composite_scan", "composite scan"),
    ("engine.op.index_nl_join", "index NL join"),
    ("engine.op.hash_join", "hash join"),
    ("storage.btree.lookups", "btree lookups"),
    ("storage.heap.scans", "heap scans"),
];

/// Render the per-epoch access-path mix from the time series: how the
/// executor's operator choices shift as the tuner materializes indices.
pub fn render_access_path_mix(title: &str, obs: &Snapshot) -> String {
    let mut out = format!("## Access-path mix per epoch — {title}\n\n");
    out.push_str("| epoch |");
    for (_, label) in ACCESS_PATH_COUNTERS {
        out.push_str(&format!(" {label} |"));
    }
    out.push('\n');
    out.push_str("|------:|");
    for _ in ACCESS_PATH_COUNTERS {
        out.push_str("---:|");
    }
    out.push('\n');
    let axis = obs.series.max_epoch().map_or(0, |e| e + 1);
    for e in 0..axis {
        out.push_str(&format!("| {e} |"));
        for (name, _) in ACCESS_PATH_COUNTERS {
            out.push_str(&format!(" {} |", obs.series.counter_at(e, name)));
        }
        out.push('\n');
    }
    if axis == 0 {
        out.push_str("| — |");
        for _ in ACCESS_PATH_COUNTERS {
            out.push_str(" — |");
        }
        out.push('\n');
    }
    out
}

fn join_cols(cols: &[colt_catalog::ColRef]) -> String {
    cols.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
}

fn dash_if_empty(s: &str) -> &str {
    if s.is_empty() {
        "—"
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Policy, QuerySample};
    use colt_core::trace::EpochRecord;
    use colt_core::Trace;
    use colt_obs::{Level, Recorder};

    fn run_with(trace: Trace, obs: Snapshot) -> RunResult {
        RunResult {
            policy: Policy::None,
            samples: vec![QuerySample { exec_millis: 1.0, tuning_millis: 0.0, rows: 0 }],
            trace,
            final_indices: Vec::new(),
            offline: None,
            profiled_indices: 0,
            obs,
        }
    }

    fn recorder_with_decisions() -> Snapshot {
        let mut r = Recorder::new(Level::Summary);
        r.record_decision(
            DecisionRecord::new("knapsack")
                .field("candidates", "t0.c0:40:123.456|t0.c1:60:-2.000")
                .field("chosen", "t0.c0")
                .field("budget_pages", 100u64)
                .field("spent_pages", 40u64),
        );
        r.record_decision(
            DecisionRecord::new("index_create")
                .field("index", "t0.c0")
                .field("via", "reorganize")
                .field("build_millis", 12.5),
        );
        r.add_counter("engine.op.seq_scan", 5);
        r.mark_epoch(0);
        r.add_counter("engine.op.index_scan", 7);
        r.mark_epoch(1);
        r.into_snapshot()
    }

    #[test]
    fn ledger_kind_labels_mirror_the_obs_table() {
        let ours: Vec<&str> = LEDGER_KIND_LABELS.iter().map(|(k, _)| *k).collect();
        let theirs: Vec<&str> = colt_obs::LEDGER_KINDS.iter().map(|(k, _)| *k).collect();
        assert_eq!(ours, theirs, "flight.rs labels must cover exactly colt_obs::LEDGER_KINDS");
        assert_eq!(kind_label("knapsack"), "knapsack solve");
        assert_eq!(kind_label("unknown_kind"), "unknown_kind");
    }

    #[test]
    fn ledger_digest_lists_every_kind() {
        let s = render_ledger_digest(&recorder_with_decisions());
        for (_, label) in LEDGER_KIND_LABELS {
            assert!(s.contains(label), "digest misses `{label}`:\n{s}");
        }
        assert!(s.contains("| knapsack solve | 1 | 0 | 0 |"), "digest:\n{s}");
        assert!(s.contains("| what-if probe | 0 | — | — |"), "digest:\n{s}");
    }

    #[test]
    fn candidates_round_trip() {
        let rec = DecisionRecord::new("knapsack")
            .field("candidates", "t0.c0:40:123.456|t0.c1:60:-2.000");
        let c = parse_candidates(&rec);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].index, "t0.c0");
        assert_eq!(c[0].size_pages, 40);
        assert!((c[0].value - 123.456).abs() < 1e-9);
        assert!((c[1].value + 2.0).abs() < 1e-9);
        assert!(parse_candidates(&DecisionRecord::new("knapsack")).is_empty());
    }

    #[test]
    fn timeline_pads_to_the_recorder_axis() {
        let mut trace = Trace::new();
        trace.push(EpochRecord::zero(0));
        let s = render_decision_timeline(&run_with(trace, recorder_with_decisions()));
        // The series saw epochs 0 and 1; the trace closed only epoch 0,
        // so the table has a zero row for epoch 1.
        assert!(s.contains("| 0 | 0/0 | 0 | 0.000 | 40/100 |"), "timeline:\n{s}");
        assert!(s.contains("| 1 | 0/0 | 0 | 0.000 | — |"), "timeline:\n{s}");
    }

    #[test]
    fn explanations_join_creates_to_their_knapsack() {
        let s = render_index_explanations(&run_with(Trace::new(), recorder_with_decisions()));
        assert!(
            s.contains("| 0 | create | t0.c0 | reorganize | 12.5 | 123.456 | 40 | 40/100 |"),
            "explanations:\n{s}"
        );
    }

    #[test]
    fn explanations_render_a_placeholder_row_when_empty() {
        let s = render_index_explanations(&run_with(Trace::new(), Snapshot::default()));
        assert!(s.contains("| — | — | — | — | — | — | — | — |"));
    }

    #[test]
    fn access_path_mix_reads_the_series() {
        let s = render_access_path_mix("COLT", &recorder_with_decisions());
        assert!(s.contains("| 0 | 5 | 0 |"), "mix:\n{s}");
        assert!(s.contains("| 1 | 0 | 7 |"), "mix:\n{s}");
        let empty = render_access_path_mix("NONE", &Snapshot::default());
        assert!(empty.contains("| — |"));
    }

    #[test]
    fn explaining_knapsack_takes_the_latest_at_or_before() {
        let mut r = Recorder::new(Level::Summary);
        r.record_decision(DecisionRecord::new("knapsack").field("spent_pages", 1u64));
        r.add_counter("c.n", 1);
        r.mark_epoch(0);
        r.record_decision(DecisionRecord::new("knapsack").field("spent_pages", 2u64));
        let obs = r.into_snapshot();
        assert_eq!(explaining_knapsack(&obs, 0).unwrap().get_u64("spent_pages"), Some(1));
        assert_eq!(explaining_knapsack(&obs, 5).unwrap().get_u64("spent_pages"), Some(2));
    }
}
