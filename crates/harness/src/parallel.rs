//! Parallel experiment harness: fan independent run cells (policy arms ×
//! seeds × workload presets) across a scoped thread pool.
//!
//! A [`Cell`] is one self-contained experiment — it borrows the
//! [`Database`] and query stream read-only and owns every piece of
//! mutable state ([`Experiment::run`] creates the physical
//! configuration, tuner, optimizer memo, and PRNG internally). Because
//! the engine has no interior mutability anywhere (`unsafe` is denied
//! workspace-wide), cells are embarrassingly parallel and their results
//! are **bit-identical to serial runs**: the per-query
//! [`crate::QuerySample`] streams and the [`RunResult::summary_json`]
//! bytes do not depend on thread count or scheduling.
//!
//! Scheduling is a work-stealing claim counter: each worker thread
//! atomically claims the next unstarted cell index until the queue is
//! drained, so long cells (COLT arms) do not serialize behind short ones
//! (NONE baselines). Results are keyed by cell index, so output order is
//! deterministic too.
//!
//! Thread-safety contract: the `Database` is shared read-only across
//! cells; anything mutable is created inside the cell that uses it.
//! Progress lines go to **stderr** only, keeping stdout byte-identical
//! across thread counts.

use crate::runner::{Experiment, Policy, RunResult};
use colt_catalog::Database;
use colt_engine::{ExecError, Query};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One independent run cell: a labelled (database, workload, policy)
/// triple.
#[derive(Debug, Clone)]
pub struct Cell<'a> {
    /// Display label, e.g. `"COLT seed=42"`.
    pub label: String,
    /// Shared, read-only database.
    pub db: &'a Database,
    /// The query stream this cell executes.
    pub workload: &'a [Query],
    /// For OFFLINE cells: the queries handed to the advisor.
    pub analyzed: Option<&'a [Query]>,
    /// The tuning policy of the cell.
    pub policy: Policy,
}

impl<'a> Cell<'a> {
    /// A cell over `workload` under `policy`.
    pub fn new(
        label: impl Into<String>,
        db: &'a Database,
        workload: &'a [Query],
        policy: Policy,
    ) -> Self {
        Cell { label: label.into(), db, workload, analyzed: None, policy }
    }

    /// Set the advisor's analyzed workload (OFFLINE cells).
    pub fn analyzed(mut self, analyzed: &'a [Query]) -> Self {
        self.analyzed = Some(analyzed);
        self
    }

    /// Run the cell serially in the current thread.
    pub fn run(&self) -> Result<RunResult, ExecError> {
        let mut exp = Experiment::new(self.db, self.workload).policy(self.policy.clone());
        if let Some(a) = self.analyzed {
            exp = exp.analyzed(a);
        }
        exp.run()
    }
}

/// One finished cell: its label, run result, and own wall-clock time.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// The run's outcome (identical to a serial run of the same cell).
    pub result: RunResult,
    /// Wall-clock milliseconds this cell took (real time, not the
    /// simulated time inside `result`).
    pub cell_millis: f64,
}

/// The outcome of a [`run_cells`] batch.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Finished cells, in the order the cells were submitted.
    pub cells: Vec<CellResult>,
    /// Wall-clock milliseconds for the whole batch.
    pub wall_millis: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl ParallelReport {
    /// Sum of per-cell wall-clock times — what a serial run would cost.
    pub fn serial_millis(&self) -> f64 {
        self.cells.iter().map(|c| c.cell_millis).sum()
    }

    /// Speedup over a serial run (`serial_millis / wall_millis`).
    pub fn speedup(&self) -> f64 {
        if self.wall_millis > 0.0 {
            self.serial_millis() / self.wall_millis
        } else {
            1.0
        }
    }

    /// The run results, in submission order.
    pub fn results(&self) -> impl Iterator<Item = &RunResult> {
        self.cells.iter().map(|c| &c.result)
    }

    /// Look a finished cell up by label.
    pub fn get(&self, label: &str) -> Option<&RunResult> {
        self.cells.iter().find(|c| c.label == label).map(|c| &c.result)
    }

    /// The batch's merged metrics: every cell's [`RunResult::obs`]
    /// snapshot folded together in submission order. Each cell recorded
    /// into its own thread-local recorder during the run, so this
    /// aggregation is lock-free — it happens strictly after the worker
    /// threads have joined.
    pub fn obs(&self) -> colt_obs::Snapshot {
        let mut merged = colt_obs::Snapshot::default();
        for cell in &self.cells {
            merged.merge(&cell.result.obs);
        }
        merged
    }
}

/// Worker-thread count: `COLT_THREADS` if set and positive, else the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("COLT_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Run every cell and collect results in submission order.
///
/// `threads <= 1` runs inline in the calling thread (no pool); more
/// threads fan the cells over a scoped pool with a work-stealing claim
/// counter. Either way the results — including every per-query sample
/// and the `summary_json` bytes — are identical.
pub fn run_cells(cells: &[Cell<'_>], threads: usize) -> Result<ParallelReport, ExecError> {
    let start = Instant::now();
    let n = cells.len();
    let workers = threads.max(1).min(n.max(1));

    let mut indexed: Vec<(usize, Result<CellResult, ExecError>)> = if workers <= 1 {
        cells.iter().enumerate().map(|(i, cell)| (i, time_cell(cell, i, n))).collect()
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, time_cell(&cells[i], i, n)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                // colt: allow(panic-policy) — deliberately propagates a worker's panic to the caller
                .flat_map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
    };
    indexed.sort_by_key(|(i, _)| *i);

    Ok(ParallelReport {
        cells: indexed.into_iter().map(|(_, c)| c).collect::<Result<_, _>>()?,
        wall_millis: start.elapsed().as_secs_f64() * 1e3,
        threads: workers,
    })
}

/// Run every cell on [`default_threads`] workers.
pub fn run_cells_default(cells: &[Cell<'_>]) -> Result<ParallelReport, ExecError> {
    run_cells(cells, default_threads())
}

fn time_cell(cell: &Cell<'_>, index: usize, total: usize) -> Result<CellResult, ExecError> {
    // Progress goes through the event sink (stderr only), so stdout
    // stays byte-identical across thread counts and COLT_OBS levels.
    colt_obs::progress(
        colt_obs::Event::new("cell_start")
            .field("cell", index + 1)
            .field("total", total)
            .field("label", cell.label.as_str())
            .field("policy", cell.policy.label()),
    );
    let t0 = Instant::now();
    let result = cell.run()?;
    let cell_millis = t0.elapsed().as_secs_f64() * 1e3;
    colt_obs::progress(
        colt_obs::Event::new("cell_finish")
            .field("cell", index + 1)
            .field("total", total)
            .field("label", cell.label.as_str())
            .field("policy", cell.policy.label())
            .field("wall_ms", cell_millis),
    );
    Ok(CellResult { label: cell.label.clone(), result, cell_millis })
}

// Compile-time audit of the thread-safety contract: the shared state
// (Database behind &) and the cells themselves must cross threads.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn ok<T: Send + Sync>() {}
    ok::<Database>();
    ok::<Cell<'_>>();
    ok::<Policy>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{ColRef, Column, TableId, TableSchema};
    use colt_core::ColtConfig;
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![Column::new("id", ValueType::Int), Column::new("g", ValueType::Int)],
        ));
        db.insert_rows(t, (0..8_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 16)])));
        db.analyze_all();
        (db, t)
    }

    fn stream(t: TableId, n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), (i * 7 % 8_000) as i64)]))
            .collect()
    }

    fn arm_cells<'a>(db: &'a Database, w: &'a [Query]) -> Vec<Cell<'a>> {
        vec![
            Cell::new("NONE", db, w, Policy::None),
            Cell::new("OFFLINE", db, w, Policy::Offline { budget_pages: 100_000 }),
            Cell::new(
                "COLT",
                db,
                w,
                Policy::colt(ColtConfig { storage_budget_pages: 100_000, ..Default::default() }),
            ),
        ]
    }

    #[test]
    fn parallel_equals_serial_per_sample() {
        let (db, t) = setup();
        let w = stream(t, 80);
        let cells = arm_cells(&db, &w);
        let serial = run_cells(&cells, 1).unwrap();
        let parallel = run_cells(&cells, 3).unwrap();
        assert_eq!(serial.cells.len(), 3);
        assert_eq!(parallel.threads, 3);
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.result.samples, b.result.samples, "cell {}", a.label);
            assert_eq!(a.result.summary_json(), b.result.summary_json(), "cell {}", a.label);
        }
    }

    #[test]
    fn results_keep_submission_order() {
        let (db, t) = setup();
        let w = stream(t, 40);
        let cells = arm_cells(&db, &w);
        let report = run_cells(&cells, 2).unwrap();
        let labels: Vec<&str> = report.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["NONE", "OFFLINE", "COLT"]);
        assert!(report.get("COLT").is_some());
        assert!(report.get("nope").is_none());
        assert!(report.speedup() > 0.0);
        assert!(report.serial_millis() >= 0.0);
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let (db, t) = setup();
        let w = stream(t, 20);
        let cells = vec![Cell::new("only", &db, &w, Policy::None)];
        let report = run_cells(&cells, 8).unwrap();
        assert_eq!(report.threads, 1);
        assert_eq!(report.cells.len(), 1);
    }

    #[test]
    fn empty_batch() {
        let report = run_cells(&[], 4).unwrap();
        assert!(report.cells.is_empty());
        assert_eq!(report.speedup(), if report.wall_millis > 0.0 { 0.0 } else { 1.0 });
    }
}
