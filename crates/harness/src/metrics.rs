//! Convergence and adaptation metrics over run results.
//!
//! The paper makes qualitative speed claims — COLT "adapts rapidly to
//! shifts of the query load" and converges to OFFLINE "after 100
//! queries". These helpers quantify both from per-query samples.

use crate::runner::RunResult;

/// Moving average of total per-query time over a window.
fn moving_avg(run: &RunResult, window: usize) -> Vec<f64> {
    let n = run.samples.len();
    if n == 0 || window == 0 {
        return Vec::new();
    }
    let w = window.min(n);
    let mut out = Vec::with_capacity(n - w + 1);
    let mut sum: f64 = run.samples[..w].iter().map(|s| s.total_millis()).sum();
    out.push(sum / w as f64);
    for i in w..n {
        sum += run.samples[i].total_millis() - run.samples[i - w].total_millis();
        out.push(sum / w as f64);
    }
    out
}

/// First query index after which COLT's windowed average time stays
/// within `tolerance` (relative) of the baseline's for the rest of the
/// run. `None` if it never converges.
pub fn convergence_point(
    run: &RunResult,
    baseline: &RunResult,
    window: usize,
    tolerance: f64,
) -> Option<usize> {
    let a = moving_avg(run, window);
    let b = moving_avg(baseline, window);
    let n = a.len().min(b.len());
    if n == 0 {
        return None;
    }
    // Walk backwards: find the last window that violates the tolerance.
    let mut last_violation = None;
    for i in 0..n {
        if a[i] > b[i] * (1.0 + tolerance) + 1e-12 {
            last_violation = Some(i);
        }
    }
    match last_violation {
        None => Some(0),
        Some(i) if i + 1 < n => Some(i + 1),
        Some(_) => None,
    }
}

/// Adaptation latency after a workload shift at query `shift_at`: the
/// number of queries until the windowed average first comes within
/// `tolerance` of the post-shift steady state (the median of the last
/// quarter of the `shift_at..until` region — pass the next shift as
/// `until` so later phases do not contaminate the estimate). `None`
/// when it never settles.
pub fn adaptation_latency(
    run: &RunResult,
    shift_at: usize,
    until: usize,
    window: usize,
    tolerance: f64,
) -> Option<usize> {
    let n = run.samples.len().min(until);
    if shift_at + window >= n {
        return None;
    }
    let avgs = moving_avg(run, window);
    // Steady state: median of windowed averages over the last quarter
    // of the post-shift region.
    let post = &avgs[shift_at.min(avgs.len() - 1)..n.saturating_sub(window).max(shift_at + 1).min(avgs.len())];
    let tail_start = post.len() - (post.len() / 4).max(1);
    let mut tail: Vec<f64> = post[tail_start..].to_vec();
    tail.sort_by(f64::total_cmp);
    let steady = tail[tail.len() / 2];

    post.iter()
        .position(|&v| v <= steady * (1.0 + tolerance) + 1e-12)
        .map(|i| i + window / 2) // center the window
}

/// Mean what-if budget utilization (used / max) over a trace.
pub fn budget_utilization(run: &RunResult, max_budget: u64) -> f64 {
    let epochs = &run.trace.epochs;
    if epochs.is_empty() || max_budget == 0 {
        return 0.0;
    }
    epochs.iter().map(|e| e.whatif_used as f64).sum::<f64>()
        / (epochs.len() as f64 * max_budget as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Policy, QuerySample};
    use colt_core::Trace;

    fn fake(times: Vec<f64>) -> RunResult {
        RunResult {
            policy: Policy::None,
            samples: times
                .into_iter()
                .map(|t| QuerySample { exec_millis: t, tuning_millis: 0.0, rows: 0 })
                .collect(),
            trace: Trace::new(),
            final_indices: Vec::new(),
            offline: None,
            profiled_indices: 0,
            obs: colt_obs::Snapshot::default(),
        }
    }

    #[test]
    fn converges_after_startup() {
        // 30 slow queries, then parity with the baseline.
        let mut t = vec![20.0; 30];
        t.extend(vec![10.0; 170]);
        let colt = fake(t);
        let base = fake(vec![10.0; 200]);
        let p = convergence_point(&colt, &base, 10, 0.05).expect("converges");
        assert!((25..=45).contains(&p), "convergence at {p}");
    }

    #[test]
    fn never_converges_when_always_slower() {
        let colt = fake(vec![20.0; 100]);
        let base = fake(vec![10.0; 100]);
        assert_eq!(convergence_point(&colt, &base, 10, 0.05), None);
    }

    #[test]
    fn immediate_convergence() {
        let colt = fake(vec![10.0; 100]);
        let base = fake(vec![10.0; 100]);
        assert_eq!(convergence_point(&colt, &base, 10, 0.05), Some(0));
    }

    #[test]
    fn adaptation_measures_post_shift_settling() {
        // Steady at 10, shift at 100 spikes to 30, settles back by ~140.
        let mut t = vec![10.0; 100];
        t.extend(vec![30.0; 40]);
        t.extend(vec![10.0; 160]);
        let run = fake(t);
        let lat = adaptation_latency(&run, 100, 300, 10, 0.1).expect("settles");
        assert!((30..=60).contains(&lat), "latency {lat}");
        // A bounded region excluding the settled tail gives no latency
        // when the region never reaches steady state... but a region
        // ending inside the spike still reports the spike's own level.
        assert!(adaptation_latency(&run, 290, 295, 10, 0.1).is_none());
    }

    #[test]
    fn empty_runs_never_converge() {
        let empty = fake(vec![]);
        let base = fake(vec![10.0; 50]);
        assert_eq!(convergence_point(&empty, &base, 10, 0.05), None);
        assert_eq!(convergence_point(&base, &empty, 10, 0.05), None);
        assert_eq!(convergence_point(&empty, &empty, 10, 0.05), None);
    }

    #[test]
    fn window_larger_than_sample_count_clamps() {
        // moving_avg clamps the window to the run length, so a giant
        // window degenerates to one whole-run average per side.
        let colt = fake(vec![10.0; 5]);
        let base = fake(vec![10.0; 5]);
        assert_eq!(convergence_point(&colt, &base, 1_000, 0.05), Some(0));
        let slow = fake(vec![20.0; 5]);
        assert_eq!(convergence_point(&slow, &base, 1_000, 0.05), None);
    }

    #[test]
    fn zero_window_never_converges() {
        let colt = fake(vec![10.0; 20]);
        let base = fake(vec![10.0; 20]);
        assert_eq!(convergence_point(&colt, &base, 0, 0.05), None);
    }

    #[test]
    fn violation_in_final_window_means_no_convergence() {
        // The run is at parity except for the very last window — there
        // is no later window to converge in, so the answer must be None,
        // not an out-of-range index.
        let mut t = vec![10.0; 99];
        t.push(1_000.0);
        let colt = fake(t);
        let base = fake(vec![10.0; 100]);
        assert_eq!(convergence_point(&colt, &base, 1, 0.05), None);
    }

    #[test]
    fn budget_utilization_means() {
        use colt_core::EpochRecord;
        let mut run = fake(vec![1.0; 10]);
        for (i, used) in [20u64, 0, 0, 0].iter().enumerate() {
            run.trace.push(EpochRecord {
                epoch: i as u64,
                whatif_used: *used,
                whatif_limit: 20,
                whatif_skipped: 0,
                next_budget: 0,
                ratio: 1.0,
                net_benefit_m: 0.0,
                net_benefit_m_prime: 0.0,
                materialized: vec![],
                created: vec![],
                dropped: vec![],
                hot: vec![],
                build_millis: 0.0,
                candidate_count: 0,
                cluster_count: 0,
            });
        }
        assert!((budget_utilization(&run, 20) - 0.25).abs() < 1e-12);
        assert_eq!(budget_utilization(&fake(vec![]), 20), 0.0);
    }
}
