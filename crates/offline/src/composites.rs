//! Multi-column index advisor — a concrete take on the paper's stated
//! future work ("the extension of our techniques to more general access
//! structures, e.g., multi-column indices").
//!
//! Given a known workload, the advisor enumerates two-column composite
//! candidates from predicates that co-occur on the same table (an
//! equality as the leading column, an equality or range as the second),
//! estimates each candidate's benefit *beyond the best single-column
//! index* for the same queries, and returns a ranked list. The caller
//! can materialize accepted suggestions with
//! [`colt_catalog::PhysicalConfig::create_composite`].

use colt_catalog::{ColRef, CompositeKey, Database};
use colt_engine::cost::{index_scan_cost, seq_scan_cost};
use colt_engine::selectivity::predicate_selectivity;
use colt_engine::{PredicateKind, Query};
use std::collections::BTreeMap;

/// One ranked suggestion.
#[derive(Debug, Clone)]
pub struct CompositeSuggestion {
    /// The suggested composite index.
    pub key: CompositeKey,
    /// Queries in the workload the composite would serve.
    pub occurrences: u64,
    /// Estimated total benefit (cost units) beyond the best
    /// single-column index for the same queries.
    pub extra_benefit: f64,
    /// Estimated size in pages.
    pub pages: u64,
}

/// Analyze a workload and rank two-column composite candidates.
pub fn suggest_composites(
    db: &Database,
    workload: &[Query],
    top_k: usize,
) -> Vec<CompositeSuggestion> {
    let mut acc: BTreeMap<CompositeKey, (u64, f64)> = BTreeMap::new();

    for q in workload {
        for &table in &q.tables {
            let t = db.table(table);
            let rows = t.heap.row_count() as f64;
            let pages = t.heap.page_count() as f64;
            let preds: Vec<_> = q.selections_on(table).collect();
            if preds.len() < 2 {
                continue;
            }
            let eqs: Vec<_> = preds
                .iter()
                .filter(|p| matches!(p.kind, PredicateKind::Eq(_)))
                .collect();
            for lead in &eqs {
                for second in &preds {
                    if second.col == lead.col {
                        continue;
                    }
                    let key = CompositeKey::new(table, vec![lead.col.column, second.col.column]);
                    let sel_lead = predicate_selectivity(db, lead);
                    let sel_second = predicate_selectivity(db, second);

                    // Cost through the composite: both predicates
                    // resolved inside the index.
                    let comp_est = key.estimate(db);
                    let comp_cost = index_scan_cost(
                        &db.cost,
                        &comp_est,
                        sel_lead * sel_second,
                        rows,
                        pages,
                        preds.len().saturating_sub(2),
                    );

                    // The single-column alternative: the better of the
                    // two per-column indices (each resolves only its own
                    // predicate), or the sequential scan.
                    let single = |col: ColRef, sel: f64| {
                        let est = db.index_estimate(col);
                        index_scan_cost(
                            &db.cost,
                            &est,
                            sel,
                            rows,
                            pages,
                            preds.len().saturating_sub(1),
                        )
                    };
                    let best_alternative = single(lead.col, sel_lead)
                        .min(single(second.col, sel_second))
                        .min(seq_scan_cost(&db.cost, pages, rows, preds.len()));

                    let extra = (best_alternative - comp_cost).max(0.0);
                    if extra > 0.0 {
                        let e = acc.entry(key).or_insert((0, 0.0));
                        e.0 += 1;
                        e.1 += extra;
                    }
                }
            }
        }
    }

    let mut out: Vec<CompositeSuggestion> = acc
        .into_iter()
        .map(|(key, (occurrences, extra_benefit))| {
            let pages = key.estimate(db).pages;
            CompositeSuggestion { key, occurrences, extra_benefit, pages }
        })
        .collect();
    out.sort_by(|a, b| b.extra_benefit.total_cmp(&a.extra_benefit));
    out.truncate(top_k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableId, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.add_table(TableSchema::new(
            "t",
            vec![
                Column::new("a", ValueType::Int), // 40 distinct
                Column::new("b", ValueType::Int), // 50 distinct
                Column::new("c", ValueType::Int), // 4 distinct
            ],
        ));
        db.insert_rows(
            t,
            (0..40_000i64).map(|i| {
                row_from(vec![Value::Int(i % 40), Value::Int(i % 50), Value::Int(i % 4)])
            }),
        );
        db.analyze_all();
        (db, t)
    }

    #[test]
    fn cooccurring_pair_is_suggested_first() {
        let (db, t) = db();
        let a = ColRef::new(t, 0);
        let b = ColRef::new(t, 1);
        // 100 queries always pairing a-eq with b-eq: individually each
        // predicate keeps ~1000/800 rows, together ~20 — a composite is
        // the clear winner.
        let w: Vec<Query> = (0..100)
            .map(|i| {
                Query::single(t, vec![SelPred::eq(a, i % 40), SelPred::eq(b, i % 50)])
            })
            .collect();
        let suggestions = suggest_composites(&db, &w, 5);
        assert!(!suggestions.is_empty());
        let top = &suggestions[0];
        assert_eq!(top.key.table, t);
        assert_eq!(top.occurrences, 100);
        assert!(top.extra_benefit > 0.0);
        assert!(top.pages > 0);
        // Both orderings of (a, b) are candidates; the top one starts
        // with one of them.
        assert!(top.key.columns == vec![0, 1] || top.key.columns == vec![1, 0]);
    }

    #[test]
    fn no_suggestions_without_cooccurrence() {
        let (db, t) = db();
        let w: Vec<Query> = (0..50)
            .map(|i| Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), i % 40)]))
            .collect();
        assert!(suggest_composites(&db, &w, 5).is_empty());
    }

    #[test]
    fn materialized_suggestion_speeds_up_the_workload() {
        use colt_engine::{Collect, Executor, IndexSetView, Optimizer};
        let (db, t) = db();
        let a = ColRef::new(t, 0);
        let b = ColRef::new(t, 1);
        let w: Vec<Query> =
            (0..20).map(|i| Query::single(t, vec![SelPred::eq(a, i * 3 % 40), SelPred::eq(b, i * 7 % 50)])).collect();
        let top = suggest_composites(&db, &w, 1).remove(0);

        let bare = PhysicalConfig::new();
        let mut with = PhysicalConfig::new();
        with.create_composite(&db, top.key.clone());

        let opt = Optimizer::new(&db);
        let mut bare_ms = 0.0;
        let mut comp_ms = 0.0;
        for q in &w {
            let p1 = opt.optimize(q, IndexSetView::real(&bare));
            bare_ms += Executor::new(&db, &bare)
                .execute(q, &p1, Collect::CountOnly)
                .expect("plan matches query")
                .millis();
            let p2 = opt.optimize(q, IndexSetView::real(&with));
            comp_ms += Executor::new(&db, &with)
                .execute(q, &p2, Collect::CountOnly)
                .expect("plan matches query")
                .millis();
        }
        assert!(
            comp_ms < bare_ms / 5.0,
            "composite must dominate: {comp_ms} vs {bare_ms}"
        );
    }

    use colt_catalog::PhysicalConfig;

    #[test]
    fn ranking_is_by_extra_benefit() {
        let (db, t) = db();
        let a = ColRef::new(t, 0);
        let b = ColRef::new(t, 1);
        let c = ColRef::new(t, 2);
        // (a,b) co-occurs 50 times, (a,c) only 5.
        let mut w: Vec<Query> = (0..50)
            .map(|i| Query::single(t, vec![SelPred::eq(a, i % 40), SelPred::eq(b, i % 50)]))
            .collect();
        w.extend(
            (0..5).map(|i| Query::single(t, vec![SelPred::eq(a, i % 40), SelPred::eq(c, i % 4)])),
        );
        let suggestions = suggest_composites(&db, &w, 10);
        assert!(suggestions.len() >= 2);
        assert!(suggestions.windows(2).all(|w| w[0].extra_benefit >= w[1].extra_benefit));
        assert!(suggestions[0].key.columns.contains(&1), "the (a,b) family must rank first");
    }
}
