//! # colt-offline
//!
//! The idealized OFFLINE baseline of the paper's evaluation (§6.1):
//! given *complete* knowledge of the workload and unlimited off-line
//! processing time, select the single-column index set that minimizes
//! the total (estimated) execution cost within the storage budget `B`,
//! using the same what-if optimizer as COLT. Index selection and
//! materialization happen before the workload runs and are not charged.
//!
//! ## Exhaustiveness without 2^N enumeration
//!
//! The paper's OFFLINE enumerates all index subsets. We obtain the same
//! optimum exactly, but structurally: under the System-R cost model of
//! `colt-engine`, the cost of a query decomposes as
//! `Σ_tables scan_cost + join_structure_cost`, where the join term
//! depends only on (index-independent) cardinality estimates. A table's
//! scan uses at most one index, so with an index set `A` the benefit for
//! query `q` on table `t` is `max_{I ∈ A ∩ t} gain(q, I)`. The optimal
//! configuration therefore factorizes per table, and an exact *grouped*
//! knapsack over per-table index subsets yields the global optimum —
//! identical to full enumeration, verified against brute force in the
//! tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use colt_catalog::{ColRef, Database, IndexOrigin, PhysicalConfig, TableId};
use colt_engine::{Eqo, Query};
use std::collections::BTreeMap;

pub mod composites;
pub use composites::{suggest_composites, CompositeSuggestion};

/// The result of off-line index selection.
#[derive(Debug, Clone)]
pub struct OfflineSelection {
    /// The chosen index set.
    pub indices: Vec<ColRef>,
    /// Total estimated benefit (cost units) of the chosen set over the
    /// analyzed workload.
    pub total_benefit: f64,
    /// Total estimated size in pages.
    pub total_pages: u64,
    /// What-if calls spent during the (off-line, uncharged) analysis.
    pub whatif_calls: u64,
}

/// Per-(query, index) gains for the whole workload, grouped by table.
struct GainTable {
    /// For each table: its candidate indices and, for each query that
    /// touches the table, the per-index gain vector.
    by_table: BTreeMap<TableId, TableGains>,
    whatif_calls: u64,
}

struct TableGains {
    cols: Vec<ColRef>,
    /// One row per query occurrence: `gains[k][j]` is the gain of
    /// `cols[j]` for the k-th query on this table.
    gains: Vec<Vec<f64>>,
}

fn measure_gains(db: &Database, workload: &[Query]) -> GainTable {
    let empty = PhysicalConfig::new();
    let mut eqo = Eqo::new(db);
    let mut by_table: BTreeMap<TableId, TableGains> = BTreeMap::new();

    // Candidate indices = every column restricted anywhere in the
    // workload (the same mining rule COLT uses).
    let mut candidates: BTreeMap<TableId, Vec<ColRef>> = BTreeMap::new();
    for q in workload {
        for col in q.candidate_columns() {
            let v = candidates.entry(col.table).or_default();
            if !v.contains(&col) {
                v.push(col);
            }
        }
    }
    for (t, cols) in &candidates {
        by_table.insert(*t, TableGains { cols: cols.clone(), gains: Vec::new() });
    }

    for q in workload {
        for &t in &q.tables {
            let Some(tg) = by_table.get_mut(&t) else { continue };
            let probes: Vec<ColRef> =
                tg.cols.iter().copied().filter(|c| q.selections_on(t).any(|p| p.col == *c)).collect();
            if probes.is_empty() {
                continue;
            }
            let measured = eqo.what_if_optimize(q, &probes, &empty);
            let row: Vec<f64> = tg
                .cols
                .iter()
                .map(|c| measured.iter().find(|g| g.col == *c).map(|g| g.gain).unwrap_or(0.0))
                .collect();
            tg.gains.push(row);
        }
    }
    GainTable { by_table, whatif_calls: eqo.counters().whatif_calls }
}

/// Benefit of choosing the subset encoded by `mask` of a table's
/// candidate indices: per query, the best single index wins.
fn subset_benefit(tg: &TableGains, mask: u32) -> f64 {
    tg.gains
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|(j, _)| mask & (1 << j) != 0)
                .map(|(_, g)| *g)
                .fold(0.0f64, f64::max)
        })
        .sum()
}

/// Select the optimal index set for a known workload within `budget_pages`.
pub fn select(db: &Database, workload: &[Query], budget_pages: u64) -> OfflineSelection {
    let gt = measure_gains(db, workload);

    // Build per-table groups: every subset of the table's candidates is
    // one option with a size and a benefit.
    struct Choice {
        cols: Vec<ColRef>,
        size: u64,
        benefit: f64,
    }
    let mut groups: Vec<Vec<Choice>> = Vec::new();
    for tg in gt.by_table.values() {
        let n = tg.cols.len();
        assert!(n <= 20, "too many candidate indices on one table for exhaustive subsets");
        let sizes: Vec<u64> = tg.cols.iter().map(|&c| db.index_estimate(c).pages).collect();
        let mut options = Vec::with_capacity(1 << n);
        for mask in 0u32..(1u32 << n) {
            let size: u64 = (0..n).filter(|j| mask & (1 << j) != 0).map(|j| sizes[j]).sum();
            if mask != 0 && size > budget_pages {
                continue; // cannot fit regardless of other tables
            }
            options.push(Choice {
                cols: (0..n).filter(|j| mask & (1 << j) != 0).map(|j| tg.cols[j]).collect(),
                size,
                benefit: subset_benefit(tg, mask),
            });
        }
        groups.push(options);
    }

    // Grouped knapsack DP over (rescaled) capacity.
    const MAX_STEPS: u64 = 8192;
    let scale = budget_pages.div_ceil(MAX_STEPS).max(1);
    let cap = (budget_pages / scale) as usize;
    // dp[c] = (benefit, chosen option per processed group)
    let mut dp: Vec<Option<(f64, Vec<usize>)>> = vec![None; cap + 1];
    dp[0] = Some((0.0, Vec::new()));
    for options in &groups {
        let mut next: Vec<Option<(f64, Vec<usize>)>> = vec![None; cap + 1];
        for c in 0..=cap {
            let Some((base, chosen)) = &dp[c] else { continue };
            for (oi, o) in options.iter().enumerate() {
                let sz = (o.size.div_ceil(scale)) as usize;
                if c + sz > cap {
                    continue;
                }
                let cand = base + o.benefit;
                if next[c + sz].as_ref().is_none_or(|(b, _)| cand > *b) {
                    let mut chosen = chosen.clone();
                    chosen.push(oi);
                    next[c + sz] = Some((cand, chosen));
                }
            }
        }
        dp = next;
    }
    // On benefit ties prefer the smallest capacity slot (fewest pages),
    // so useless indices are never materialized just because they fit.
    let mut best: Option<(f64, Vec<usize>)> = None;
    for entry in dp.into_iter().flatten() {
        if best.as_ref().is_none_or(|(b, _)| entry.0 > *b + 1e-9) {
            best = Some(entry);
        }
    }
    // colt: allow(panic-policy) — the DP always contains the empty selection, so a best entry exists
    let (best_benefit, best_choice) = best.expect("empty-set option always feasible");

    let mut indices = Vec::new();
    let mut total_pages = 0;
    for (gi, &oi) in best_choice.iter().enumerate() {
        let o = &groups[gi][oi];
        indices.extend(o.cols.iter().copied());
        total_pages += o.size;
    }
    indices.sort_unstable();
    OfflineSelection {
        indices,
        total_benefit: best_benefit,
        total_pages,
        whatif_calls: gt.whatif_calls,
    }
}

/// Materialize a selection into a physical configuration (builds are
/// performed off-line and not charged to any query stream).
pub fn materialize(db: &Database, selection: &OfflineSelection) -> PhysicalConfig {
    let mut config = PhysicalConfig::new();
    for &col in &selection.indices {
        config.create_index(db, col, IndexOrigin::Online);
    }
    config
}

/// Literal exhaustive search over *all* subsets of the workload's
/// candidate indices — exponential; only for validating [`select`] on
/// small inputs.
pub fn select_brute_force(db: &Database, workload: &[Query], budget_pages: u64) -> OfflineSelection {
    let gt = measure_gains(db, workload);
    let all: Vec<ColRef> = gt.by_table.values().flat_map(|tg| tg.cols.iter().copied()).collect();
    let n = all.len();
    assert!(n <= 20, "brute force limited to 20 candidates");
    let sizes: Vec<u64> = all.iter().map(|&c| db.index_estimate(c).pages).collect();

    let mut best_mask = 0u32;
    let mut best_benefit = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        let size: u64 = (0..n).filter(|j| mask & (1 << j) != 0).map(|j| sizes[j]).sum();
        if size > budget_pages {
            continue;
        }
        // Benefit: per table, per query, best available index.
        let mut benefit = 0.0;
        let mut offset = 0;
        for tg in gt.by_table.values() {
            let local_mask = (mask >> offset) & ((1u32 << tg.cols.len()) - 1);
            benefit += subset_benefit(tg, local_mask);
            offset += tg.cols.len();
        }
        if benefit > best_benefit {
            best_benefit = benefit;
            best_mask = mask;
        }
    }
    let indices: Vec<ColRef> =
        (0..n).filter(|j| best_mask & (1 << j) != 0).map(|j| all[j]).collect();
    let total_pages = (0..n).filter(|j| best_mask & (1 << j) != 0).map(|j| sizes[j]).sum();
    OfflineSelection {
        indices,
        total_benefit: best_benefit,
        total_pages,
        whatif_calls: gt.whatif_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colt_catalog::{Column, TableSchema};
    use colt_engine::SelPred;
    use colt_storage::{row_from, Value, ValueType};

    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let a = db.add_table(TableSchema::new(
            "a",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("g", ValueType::Int),
                Column::new("h", ValueType::Int),
            ],
        ));
        let b = db.add_table(TableSchema::new(
            "b",
            vec![Column::new("id", ValueType::Int), Column::new("v", ValueType::Int)],
        ));
        db.insert_rows(
            a,
            (0..30_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 300), Value::Int(i % 3)])),
        );
        db.insert_rows(b, (0..10_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 100)])));
        db.analyze_all();
        (db, a, b)
    }

    fn workload(a: TableId, b: TableId) -> Vec<Query> {
        let mut w = Vec::new();
        for i in 0..30 {
            w.push(Query::single(a, vec![SelPred::eq(ColRef::new(a, 0), i as i64 * 7)]));
            if i % 2 == 0 {
                w.push(Query::single(a, vec![SelPred::eq(ColRef::new(a, 1), i as i64)]));
            }
            if i % 3 == 0 {
                w.push(Query::single(b, vec![SelPred::eq(ColRef::new(b, 0), i as i64)]));
            }
            if i % 5 == 0 {
                // Unselective predicate: an index on a.h is useless.
                w.push(Query::single(a, vec![SelPred::eq(ColRef::new(a, 2), 1i64)]));
            }
        }
        w
    }

    #[test]
    fn selects_beneficial_indices_within_budget() {
        let (db, a, b) = db();
        let w = workload(a, b);
        let budget = 10_000;
        let sel = select(&db, &w, budget);
        assert!(sel.indices.contains(&ColRef::new(a, 0)), "most frequent selective index chosen");
        assert!(sel.indices.contains(&ColRef::new(b, 0)));
        assert!(!sel.indices.contains(&ColRef::new(a, 2)), "useless index skipped");
        assert!(sel.total_pages <= budget);
        assert!(sel.total_benefit > 0.0);
        assert!(sel.whatif_calls > 0);
    }

    #[test]
    fn tight_budget_forces_choice() {
        let (db, a, b) = db();
        let w = workload(a, b);
        // Budget for roughly one index on `a` (30k rows).
        let one_index = db.index_estimate(ColRef::new(a, 0)).pages;
        let sel = select(&db, &w, one_index);
        assert!(sel.total_pages <= one_index);
        assert!(!sel.indices.is_empty());
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let (db, a, b) = db();
        let sel = select(&db, &workload(a, b), 0);
        assert!(sel.indices.is_empty());
        assert_eq!(sel.total_benefit, 0.0);
    }

    #[test]
    fn grouped_knapsack_matches_brute_force() {
        let (db, a, b) = db();
        let w = workload(a, b);
        for budget in [0u64, 30, 60, 100, 200, 10_000] {
            let fast = select(&db, &w, budget);
            let brute = select_brute_force(&db, &w, budget);
            assert!(
                (fast.total_benefit - brute.total_benefit).abs() < 1e-6,
                "budget {budget}: fast {} vs brute {}",
                fast.total_benefit,
                brute.total_benefit
            );
        }
    }

    #[test]
    fn materialize_builds_all_chosen() {
        let (db, a, b) = db();
        let sel = select(&db, &workload(a, b), 10_000);
        let cfg = materialize(&db, &sel);
        for c in &sel.indices {
            assert!(cfg.contains(*c));
        }
        assert_eq!(cfg.len(), sel.indices.len());
    }

    #[test]
    fn empty_workload() {
        let (db, _, _) = db();
        let sel = select(&db, &[], 1000);
        assert!(sel.indices.is_empty());
    }
}
