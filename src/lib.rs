//! # colt-repro
//!
//! A from-scratch Rust reproduction of **COLT** (*Continuous On-Line
//! Tuning*) from "On-Line Index Selection for Shifting Workloads"
//! (Schnaitter, Abiteboul, Milo, Polyzotis — ICDE 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — values, pages, heap tables, B+ trees, I/O accounting;
//! * [`catalog`] — schema, statistics, index estimates, the physical
//!   configuration;
//! * [`engine`] — SPJ queries, the Selinger-style optimizer, the what-if
//!   interface, and the executor with its deterministic simulated clock;
//! * [`colt`] — the tuner itself: profiler, self-organizer, scheduler;
//! * [`offline`] — the idealized OFFLINE baseline;
//! * [`workload`] — the TPC-H×4 data generator and the paper's workload
//!   presets;
//! * [`harness`] — experiment runners and paper-style reporting.
//!
//! ## Quickstart
//!
//! ```
//! use colt_repro::prelude::*;
//!
//! // A small two-column table.
//! let mut db = Database::new();
//! let t = db.add_table(TableSchema::new(
//!     "events",
//!     vec![Column::new("id", ValueType::Int), Column::new("kind", ValueType::Int)],
//! ));
//! db.insert_rows(t, (0..5_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 5)])));
//! db.analyze_all();
//!
//! // Drive COLT with a stream of selective point queries.
//! let mut physical = PhysicalConfig::new();
//! let mut tuner = ColtTuner::new(ColtConfig { storage_budget_pages: 10_000, ..Default::default() });
//! let mut eqo = Eqo::new(&db);
//! let col = ColRef::new(t, 0);
//! for i in 0..60i64 {
//!     let q = Query::single(t, vec![SelPred::eq(col, i * 83 % 5_000)]);
//!     let plan = eqo.optimize(&q, &physical);
//!     let _result = Executor::new(&db, &physical).execute(&q, &plan, Collect::CountOnly);
//!     tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
//! }
//! // COLT noticed the pattern and materialized the index on its own.
//! assert!(physical.contains(col));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use colt_catalog as catalog;
pub use colt_core as colt;
pub use colt_engine as engine;
pub use colt_harness as harness;
pub use colt_obs as obs;
pub use colt_offline as offline;
pub use colt_storage as storage;
pub use colt_workload as workload;

/// The most common imports for using the library.
pub mod prelude {
    pub use colt_catalog::{
        ColRef, Column, Database, IndexOrigin, PhysicalConfig, TableId, TableSchema,
    };
    pub use colt_core::{ColtConfig, ColtTuner, MaterializationStrategy, Trace};
    pub use colt_engine::{
        Collect, Eqo, ExecError, ExecOutput, Executor, IndexSetView, Optimizer, Plan, Query,
        SelPred,
    };
    pub use colt_harness::{Cell, Experiment, ParallelReport, Policy, RunResult};
    pub use colt_storage::{row_from, IoStats, Value, ValueType};
    pub use colt_workload::{generate, Preset, TpchData, DEFAULT_SCALE};
}
