//! End-to-end integration tests: small-scale versions of the paper's
//! experiments, asserting the headline claims hold.
//!
//! Each test generates the four-instance TPC-H data set at a reduced
//! scale and drives complete optimizer→executor→tuner runs.

use colt_repro::colt::ColtConfig;
use colt_repro::harness::{time_ratio, Experiment, Policy};
use colt_repro::workload::{generate, presets};

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

/// Stable workload: COLT converges to the idealized OFFLINE technique
/// (paper Figure 3: "essentially equal ... with a negligible deviation").
#[test]
fn stable_workload_converges_to_offline() {
    let data = generate(SCALE, SEED);
    let preset = presets::stable(&data, SEED);
    let offline = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::Offline { budget_pages: preset.budget_pages })
        .run().expect("run failed");
    let colt = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");

    // After the first 100 queries, COLT tracks OFFLINE closely.
    let tail = 100..preset.queries.len();
    let colt_tail = colt.range_millis(tail.clone());
    let off_tail = offline.range_millis(tail);
    let deviation = colt_tail / off_tail - 1.0;
    assert!(
        deviation < 0.10,
        "post-convergence deviation {:.1}% (paper ~1%)",
        deviation * 100.0
    );

    // COLT must also clearly beat doing nothing. (At this reduced test
    // scale many queries hit tiny floor-sized tables where no index can
    // help, so the achievable margin is smaller than at bench scale.)
    let none = Experiment::new(&data.db, &preset.queries).run().expect("run failed");
    assert!(
        colt.total_millis() < 0.9 * none.total_millis(),
        "COLT {:.0} vs no tuning {:.0}",
        colt.total_millis(),
        none.total_millis()
    );

    // And something must actually have been materialized.
    assert!(!colt.final_indices.is_empty());
    assert!(colt.trace.total_builds() >= 1);
}

/// Shifting workload: COLT outperforms OFFLINE overall (paper Figure 4:
/// 33% overall, 49% in phase 2).
#[test]
fn shifting_workload_beats_offline() {
    let data = generate(SCALE, SEED);
    let preset = presets::shifting(&data, SEED);
    let offline = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::Offline { budget_pages: preset.budget_pages })
        .run().expect("run failed");
    let colt = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");

    let reduction = 1.0 - colt.total_millis() / offline.total_millis();
    assert!(
        reduction > 0.10,
        "COLT must win by >10% on the shifting workload, got {:.1}%",
        reduction * 100.0
    );

    // At least one mid-phase must show a large (>25%) reduction — the
    // fine-tuning OFFLINE cannot do.
    let best_phase = [350..650, 700..1000, 1050..1350]
        .into_iter()
        .map(|span| 1.0 - colt.range_millis(span.clone()) / offline.range_millis(span))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(best_phase > 0.25, "best phase reduction {:.1}%", best_phase * 100.0);

    // Adaptation means real reorganization: several builds and drops.
    assert!(colt.trace.total_builds() >= 3);
    assert!(colt.trace.epochs.iter().map(|e| e.dropped.len()).sum::<usize>() >= 1);
}

/// Overhead (paper Figure 5): what-if usage peaks at phase transitions
/// and stays low in stable phases; only a small fraction of indexable
/// attributes is ever profiled accurately.
#[test]
fn whatif_overhead_self_regulates() {
    let data = generate(SCALE, SEED);
    let preset = presets::shifting(&data, SEED);
    // Skip-proofs (PR 10) are pinned off: this test charts the paper's
    // Figure 5 shape, which is the *un-skipped* profiler's budget usage.
    // The skip-proof overhead profile is covered by the `rebudget_gate`
    // bench and by `skip_proofs_cut_issued_probes` below.
    let cfg = ColtConfig {
        storage_budget_pages: preset.budget_pages,
        dynamic_rebudget: false,
        ..Default::default()
    };
    let epoch_len = cfg.epoch_length;
    let max_budget = cfg.max_whatif_per_epoch;
    let colt = Experiment::new(&data.db, &preset.queries).policy(Policy::colt(cfg)).run().expect("run failed");

    // Budget respected everywhere.
    assert!(colt.trace.whatif_per_epoch().iter().all(|&v| v <= max_budget));

    let series: Vec<u64> = colt.trace.whatif_per_epoch();

    // Mean usage across stable (non-transition) epochs below half the
    // budget.
    let transitions: Vec<usize> =
        colt_repro::workload::phase_boundaries(4, 300, 50).iter().map(|q| q / epoch_len).collect();
    let stable: Vec<u64> = series
        .iter()
        .enumerate()
        .filter(|(i, _)| transitions.iter().all(|&t| (*i as i64 - t as i64).abs() > 6))
        .map(|(_, &v)| v)
        .collect();
    let stable_mean = stable.iter().sum::<u64>() as f64 / stable.len() as f64;
    assert!(stable_mean < max_budget as f64 / 2.0, "stable mean {stable_mean}");

    // Activity around transitions exceeds the stable mean.
    let around: Vec<u64> = series
        .iter()
        .enumerate()
        .filter(|(i, _)| transitions.iter().any(|&t| (*i as i64 - t as i64).abs() <= 6))
        .map(|(_, &v)| v)
        .collect();
    let around_mean = around.iter().sum::<u64>() as f64 / around.len() as f64;
    assert!(
        around_mean > stable_mean,
        "transition mean {around_mean} vs stable {stable_mean}"
    );

    // Judicious profiling: far fewer indices profiled than indexable
    // attributes on the referenced tables (paper: ~11%).
    let referenced: std::collections::BTreeSet<_> =
        preset.queries.iter().flat_map(|q| q.tables.iter().copied()).collect();
    let attrs: usize = referenced.iter().map(|&t| data.db.table(t).schema.arity()).sum();
    let frac = colt.profiled_indices as f64 / attrs as f64;
    assert!(frac < 0.25, "profiled fraction {frac:.2}");
}

/// Dynamic re-budgeting (PR 10, after Wii): skip-proofs intercept
/// what-if probes whose gain interval provably cannot change the
/// knapsack outcome, cutting issued probes on the shifting workload
/// without changing the final index configuration or hurting
/// performance.
#[test]
fn skip_proofs_cut_issued_probes() {
    let data = generate(SCALE, SEED);
    let preset = presets::shifting(&data, SEED);
    let base = ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() };
    let on = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(base.clone()))
        .run().expect("run failed");
    let off = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig { dynamic_rebudget: false, ..base }))
        .run().expect("run failed");

    let issued = |r: &colt_repro::harness::RunResult| -> u64 {
        r.trace.epochs.iter().map(|e| e.whatif_used).sum()
    };
    let skipped = |r: &colt_repro::harness::RunResult| -> u64 {
        r.trace.epochs.iter().map(|e| e.whatif_skipped).sum()
    };
    assert_eq!(skipped(&off), 0, "the off arm must not skip");
    assert!(skipped(&on) > 0, "skip-proofs must fire on the shifting workload");
    assert!(
        (issued(&on) as f64) < 0.7 * issued(&off) as f64,
        "issued probes {} (skip-proofs on) vs {} (off)",
        issued(&on),
        issued(&off)
    );
    // Decision-quality safety: skipping is only legal when it cannot
    // change the knapsack outcome, so the tuner must land on the same
    // final configuration and essentially the same charged time.
    assert_eq!(on.final_indices, off.final_indices);
    assert!(
        on.total_millis() < off.total_millis() * 1.02,
        "skip-proofs on {:.0} ms vs off {:.0} ms",
        on.total_millis(),
        off.total_millis()
    );
}

/// Noise (paper Figure 6): short bursts are ignored — COLT stays within
/// a few percent of an OFFLINE technique that knows the noise is noise.
#[test]
fn short_noise_bursts_are_ignored() {
    let data = generate(SCALE, SEED);
    let (preset, plan) = presets::noisy(&data, 20, SEED);
    let q1_only: Vec<_> = preset
        .queries
        .iter()
        .enumerate()
        .filter(|(i, _)| !plan.is_noise(*i))
        .map(|(_, q)| q.clone())
        .collect();
    let offline = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::Offline { budget_pages: preset.budget_pages })
        .analyzed(&q1_only)
        .run().expect("run failed");
    let colt = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");
    let ratio = time_ratio(&colt, &offline, plan.warmup);
    assert!(
        ratio < 1.08,
        "burst length 20 must be (nearly) ignored; ratio {ratio:.3}"
    );
}

/// Self-regulation saves what-if calls relative to a fixed-intensity
/// tuner without losing performance (the paper's central claim).
#[test]
fn self_regulation_saves_whatif_calls() {
    let data = generate(SCALE, SEED);
    // The shifting workload exercises both hibernation (stable phases)
    // and wake-ups (transitions), where the savings are most visible.
    let preset = presets::shifting(&data, SEED);
    let queries = &preset.queries[..700];
    // Skip-proofs are pinned off in BOTH arms: they intercept exactly
    // the redundant probes the r-ratio would otherwise spend, so with
    // them on the issued counts converge and no longer isolate the
    // self-regulation mechanism this test is about.
    let base = ColtConfig {
        storage_budget_pages: preset.budget_pages,
        dynamic_rebudget: false,
        ..Default::default()
    };

    let regulated = Experiment::new(&data.db, queries).policy(Policy::colt(base.clone())).run().expect("run failed");
    let fixed = Experiment::new(&data.db, queries)
        .policy(Policy::colt(ColtConfig { self_regulation: false, ..base }))
        .run().expect("run failed");

    assert!(
        (regulated.trace.total_whatif() as f64) < 0.85 * fixed.trace.total_whatif() as f64,
        "regulated {} vs fixed {}",
        regulated.trace.total_whatif(),
        fixed.trace.total_whatif()
    );
    // Performance must not suffer by more than a few percent.
    assert!(
        regulated.total_millis() < fixed.total_millis() * 1.05,
        "regulated {:.0} vs fixed {:.0}",
        regulated.total_millis(),
        fixed.total_millis()
    );
}

/// Determinism: identical seeds give bit-identical runs.
#[test]
fn runs_are_deterministic() {
    let data = generate(0.004, 7);
    let preset = presets::stable(&data, 7);
    let queries = &preset.queries[..150];
    let cfg = ColtConfig { storage_budget_pages: preset.budget_pages, ..Default::default() };
    let a = Experiment::new(&data.db, queries).policy(Policy::colt(cfg.clone())).run().expect("run failed");
    let b = Experiment::new(&data.db, queries).policy(Policy::colt(cfg)).run().expect("run failed");
    assert_eq!(a.total_millis(), b.total_millis());
    assert_eq!(a.final_indices, b.final_indices);
    assert_eq!(a.trace.whatif_per_epoch(), b.trace.whatif_per_epoch());
}

/// Multi-user shifting workload (paper §6.2 closing remark): COLT keeps
/// its advantage when the shifting workload is generated by several
/// interleaved clients.
#[test]
fn multiuser_shifting_still_wins() {
    use colt_repro::harness::{interleave, split_round_robin};
    let data = generate(SCALE, SEED);
    let preset = presets::shifting(&data, SEED);
    let streams = split_round_robin(&preset.queries, 4);
    let merged = interleave(&streams, SEED);
    let offline = Experiment::new(&data.db, &merged)
        .policy(Policy::Offline { budget_pages: preset.budget_pages })
        .run().expect("run failed");
    let colt = Experiment::new(&data.db, &merged)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");
    let reduction = 1.0 - colt.total_millis() / offline.total_millis();
    assert!(reduction > 0.05, "multi-user reduction {:.1}%", reduction * 100.0);
}

/// Future-work extension: with a composite budget, COLT mines
/// co-occurring predicates on-line and materializes a multi-column
/// index that the single-column tuner cannot express.
#[test]
fn composite_extension_beats_single_column_colt() {
    use colt_repro::workload::{fixed, QueryDistribution, QueryTemplate, SelSpec, TemplateSelection};
    let data = generate(SCALE, SEED);
    let db = &data.db;
    let inst = &data.instances[0];
    let li = inst.table("lineitem");
    let dist = QueryDistribution::new().with(
        1.0,
        QueryTemplate::single(
            li,
            vec![
                TemplateSelection { col: inst.col(db, "lineitem", "l_suppkey"), spec: SelSpec::Eq },
                TemplateSelection { col: inst.col(db, "lineitem", "l_quantity"), spec: SelSpec::Eq },
            ],
        ),
    );
    let mut rng = colt_repro::storage::Prng::new(SEED);
    let workload = fixed(&dist, 200, db, &mut rng);

    let plain = Experiment::new(db, &workload)
        .policy(Policy::colt(ColtConfig { storage_budget_pages: 4_096, ..Default::default() }))
        .run().expect("run failed");
    let extended = Experiment::new(db, &workload)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: 4_096,
            composite_budget_pages: 4_096,
            ..Default::default()
        }))
        .run().expect("run failed");
    assert!(
        extended.total_millis() < plain.total_millis() / 2.0,
        "extension {:.0} vs plain {:.0}",
        extended.total_millis(),
        plain.total_millis()
    );
}
