//! The parallel harness must be an *observationally pure* speedup: for
//! any thread count, every cell's per-query [`QuerySample`] stream and
//! rendered summary must be byte-identical to the single-threaded run.
//! This is the determinism contract behind the figure binaries, which
//! fan their run cells across threads but still diff cleanly run-to-run.

use colt_repro::colt::ColtConfig;
use colt_repro::harness::{run_cells, Cell, Policy};
use colt_repro::workload::{generate, presets};

const SCALE: f64 = 0.004;
const SEED: u64 = 42;

/// A small figure-3-style batch: OFFLINE and COLT over the stable
/// workload, plus an untuned baseline.
fn cells<'a>(
    data: &'a colt_repro::workload::TpchData,
    preset: &'a colt_repro::workload::Preset,
) -> Vec<Cell<'a>> {
    vec![
        Cell::new("NONE", &data.db, &preset.queries, Policy::None),
        Cell::new(
            "OFFLINE",
            &data.db,
            &preset.queries,
            Policy::Offline { budget_pages: preset.budget_pages },
        ),
        Cell::new(
            "COLT",
            &data.db,
            &preset.queries,
            Policy::colt(ColtConfig {
                storage_budget_pages: preset.budget_pages,
                ..Default::default()
            }),
        ),
    ]
}

/// Serial (1 thread) and parallel (2 and 4 threads) runs produce
/// identical per-query samples, traces, and summaries for every cell.
#[test]
fn parallel_runs_are_serial_identical() {
    let data = generate(SCALE, SEED);
    let preset = presets::stable(&data, SEED);

    let serial = run_cells(&cells(&data, &preset), 1).expect("run failed");
    for threads in [2usize, 4] {
        let parallel = run_cells(&cells(&data, &preset), threads).expect("run failed");
        assert_eq!(serial.cells.len(), parallel.cells.len());
        assert_eq!(parallel.threads, threads.min(serial.cells.len()));
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            // Submission order is preserved regardless of which worker
            // finished first.
            assert_eq!(s.label, p.label);
            // The per-query sample stream is the strongest equivalence:
            // simulated times, tuning charges, and row counts per query.
            assert_eq!(s.result.samples, p.result.samples, "cell {}", s.label);
            assert_eq!(s.result.final_indices, p.result.final_indices, "cell {}", s.label);
            assert_eq!(
                s.result.trace.whatif_per_epoch(),
                p.result.trace.whatif_per_epoch(),
                "cell {}",
                s.label
            );
            // And the rendered summary is byte-identical.
            assert_eq!(s.result.summary_json(), p.result.summary_json(), "cell {}", s.label);
        }
    }
}

/// The COLT cell keeps its headline behaviour when run through the
/// parallel harness: it beats the untuned baseline and stays within the
/// serial API's results.
#[test]
fn parallel_results_match_direct_experiment_api() {
    use colt_repro::harness::Experiment;
    let data = generate(SCALE, SEED);
    let preset = presets::stable(&data, SEED);

    let report = run_cells(&cells(&data, &preset), 4).expect("run failed");
    let direct_colt = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");

    let colt = report.get("COLT").expect("COLT cell present");
    assert_eq!(colt.samples, direct_colt.samples);
    assert_eq!(colt.summary_json(), direct_colt.summary_json());

    let none = report.get("NONE").expect("NONE cell present");
    assert!(colt.total_millis() < none.total_millis());
}
