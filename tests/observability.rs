//! The observability contract, end to end:
//!
//! * a run under a `Full` recorder yields a snapshot whose per-component
//!   wall-clock breakdown accounts for the measured run time (the
//!   unattributed remainder stays under 5%);
//! * the structured event stream round-trips through the strict in-repo
//!   JSON parser;
//! * an `Off` recorder records nothing and costs the default path
//!   nothing — the samples are identical with and without recording.

use colt_repro::colt::ColtConfig;
use colt_repro::harness::{component_breakdown, Experiment, Policy};
use colt_repro::obs::{install, take, Level, Recorder};
use colt_repro::workload::{generate, presets};

const SCALE: f64 = 0.004;
const SEED: u64 = 42;

/// Run COLT over the stable preset with recording forced to `level`:
/// [`Experiment::run`] inherits the level of the recorder installed on
/// the calling thread, so installing one here controls recording
/// regardless of the `COLT_OBS` environment.
fn run_colt_at(level: Level) -> colt_repro::harness::RunResult {
    let data = generate(SCALE, SEED);
    let preset = presets::stable(&data, SEED);
    let prev = install(Recorder::new(level));
    assert!(prev.is_none(), "test thread must start without a recorder");
    let result = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run().expect("run failed");
    take(); // drop the outer recorder, leaving the thread clean
    result
}

#[test]
fn breakdown_accounts_for_run_time_within_5_percent() {
    let run = run_colt_at(Level::Full);
    assert!(!run.obs.is_empty(), "Full-level run must record metrics");

    let b = component_breakdown(&run);
    assert!(b.total_ms > 0.0, "harness.run span must be measured");
    let attributed = b.optimize_ms + b.execute_ms + b.tune_ms;
    assert!(
        attributed <= b.total_ms * 1.01 + 1.0,
        "components ({attributed} ms) must not exceed the run ({} ms)",
        b.total_ms
    );
    assert!(
        b.other_ms <= b.total_ms * 0.05 + 1.0,
        "unattributed remainder {} ms exceeds 5% of {} ms",
        b.other_ms,
        b.total_ms
    );
}

#[test]
fn snapshot_covers_every_layer() {
    let run = run_colt_at(Level::Full);
    let s = &run.obs;
    // Harness layer.
    assert!(s.counter("harness.queries") > 0);
    assert!(s.span("harness.run").is_some());
    // Engine layer.
    assert!(s.span("engine.optimize").is_some());
    assert!(s.span("engine.execute").is_some());
    assert!(s.counter("engine.whatif_calls") > 0);
    // Tuner layers.
    assert!(s.span("profiler.profile").is_some());
    assert!(s.span("tuner.epoch").is_some());
    assert!(s.span("organizer.knapsack").is_some());
    // Storage layer.
    assert!(s.counter("storage.heap.scans") > 0);
    // Simulated time attribution mirrors the sample accounting.
    let exec_sim: f64 = run.samples.iter().map(|q| q.exec_millis).sum();
    let span_sim = s.span("harness.execute").expect("execute span").sim_ms;
    assert!(
        (exec_sim - span_sim).abs() < 1e-6,
        "simulated execute time diverged: samples {exec_sim} vs span {span_sim}"
    );
    let tune_sim: f64 = run.samples.iter().map(|q| q.tuning_millis).sum();
    let tune_span = s.span("harness.tune").expect("tune span").sim_ms;
    assert!((tune_sim - tune_span).abs() < 1e-6);
    // Epoch events made it into the retained stream.
    assert!(s.events.iter().any(|e| e.kind == "epoch"), "epoch events must be retained");
}

#[test]
fn event_stream_round_trips_through_core_json() {
    let run = run_colt_at(Level::Full);
    let jsonl = run.obs.events_jsonl();
    assert!(!jsonl.is_empty());
    for (i, line) in jsonl.lines().enumerate() {
        let v = colt_repro::colt::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: {e}: {line}", i + 1));
        assert!(
            v.get("event").and_then(colt_repro::colt::json::Json::as_str).is_some(),
            "line {} lacks an event kind",
            i + 1
        );
        // The structural export agrees with the textual sink.
        assert_eq!(v, colt_repro::colt::event_json(&run.obs.events[i]));
    }
    // And the whole snapshot parses as one artifact.
    let snap_text = colt_repro::colt::snapshot_json(&run.obs).pretty();
    colt_repro::colt::json::parse(&snap_text).expect("snapshot JSON must parse");
}

#[test]
fn off_recorder_records_nothing_and_changes_nothing() {
    let full = run_colt_at(Level::Full);
    let off = run_colt_at(Level::Off);
    assert!(off.obs.is_empty(), "Off-level runs must not record");
    // The runs themselves are identical: recording is observation only.
    assert_eq!(full.samples, off.samples);
    assert_eq!(full.summary_json(), off.summary_json());
}

#[test]
fn overhead_summary_folds_spans_into_epochs() {
    let run = run_colt_at(Level::Full);
    let summary = run.trace.overhead_summary(&run.obs);
    let text = summary.pretty();
    let v = colt_repro::colt::json::parse(&text).expect("overhead summary must parse");
    use colt_repro::colt::json::Json;
    let tuner_ms = v.get("tuner_wall_ms").and_then(Json::as_f64).expect("tuner_wall_ms");
    assert!(tuner_ms > 0.0);
    let epochs = v.get("epochs").and_then(Json::as_array).expect("epochs");
    // The table spans the flight recorder's epoch axis: every closed
    // trace epoch, plus explicit zero rows for any trailing partial
    // epoch the ledger/time series saw.
    assert_eq!(epochs.len() as u64, run.trace.epoch_axis(&run.obs));
    assert!(epochs.len() >= run.trace.epochs.len());
    assert!(!epochs.is_empty(), "the stable preset closes at least one epoch");
    for e in epochs {
        let oh = e.get("overhead_wall_ms").and_then(Json::as_f64).expect("overhead field");
        assert!(oh >= 0.0);
        assert!(e.get("whatif_used").is_some(), "EpochRecord fields must survive the fold");
    }
    assert!(v.get("spans").and_then(|s| s.get("profiler.profile")).is_some());
}
