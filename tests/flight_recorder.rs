//! The flight-recorder contract, end to end: a COLT run under a
//! recording level produces a decision ledger that explains every index
//! the tuner built or dropped, a per-epoch time series aligned with the
//! trace's epoch axis, and cross-checks against the plain counters.

use colt_repro::colt::ColtConfig;
use colt_repro::harness::{explaining_knapsack, parse_candidates, Experiment, Policy};
use colt_repro::obs::{install, take, Level, Recorder};
use colt_repro::workload::{generate, presets};

const SCALE: f64 = 0.004;
const SEED: u64 = 42;

fn run_colt_at(level: Level) -> colt_repro::harness::RunResult {
    let data = generate(SCALE, SEED);
    let preset = presets::stable(&data, SEED);
    let prev = install(Recorder::new(level));
    assert!(prev.is_none(), "test thread must start without a recorder");
    let result = Experiment::new(&data.db, &preset.queries)
        .policy(Policy::colt(ColtConfig {
            storage_budget_pages: preset.budget_pages,
            ..Default::default()
        }))
        .run()
        .expect("run failed");
    take();
    result
}

#[test]
fn every_index_change_is_explained_by_the_ledger() {
    let run = run_colt_at(Level::Summary);
    assert!(!run.obs.ledger.is_empty(), "a tuned run must leave a decision trail");

    // Every create/drop the trace saw has a ledger record at the same
    // epoch, and that record joins to a knapsack solve whose candidate
    // set prices the index.
    for e in &run.trace.epochs {
        for (col, action) in e
            .created
            .iter()
            .map(|c| (c, "index_create"))
            .chain(e.dropped.iter().map(|c| (c, "index_drop")))
        {
            let name = col.to_string();
            let rec = run
                .obs
                .ledger
                .of_kind(action)
                .find(|r| r.epoch == e.epoch && r.get_str("index") == Some(name.as_str()))
                .unwrap_or_else(|| {
                    panic!("epoch {}: no {action} ledger record for {name}", e.epoch)
                });
            let solve = explaining_knapsack(&run.obs, rec.epoch)
                .unwrap_or_else(|| panic!("no knapsack solve at or before epoch {}", rec.epoch));
            assert!(
                parse_candidates(solve).iter().any(|c| c.index == name),
                "epoch {}: knapsack candidates do not price {name}",
                e.epoch
            );
        }
    }
    // And the trace's build totals agree with the ledger's.
    let ledger_creates = run.obs.ledger.of_kind("index_create").count();
    assert_eq!(ledger_creates, run.trace.total_builds(), "one create record per build");
}

#[test]
fn ledger_knapsack_spend_cross_checks_the_counter() {
    let run = run_colt_at(Level::Summary);
    // `tuner.budget.spent` is bumped by spent_pages at every knapsack
    // solve; the ledger records the same quantity per solve. The two
    // observation paths must tell one story.
    let from_ledger: u64 = run
        .obs
        .ledger
        .of_kind("knapsack")
        .map(|r| r.get_u64("spent_pages").unwrap_or(0))
        .sum();
    assert!(from_ledger > 0, "the stable preset materializes indices");
    assert_eq!(from_ledger, run.obs.counter("tuner.budget.spent"));
}

#[test]
fn time_series_spans_the_epoch_axis_without_gaps_at_the_start() {
    let run = run_colt_at(Level::Summary);
    let axis = run.trace.epoch_axis(&run.obs);
    assert!(axis as usize >= run.trace.epochs.len());
    assert!(!run.obs.series.is_empty(), "per-epoch deltas must be recorded");
    let max = run.obs.series.max_epoch().expect("non-empty series");
    assert!(max < axis, "series epochs stay inside the axis");
    // Every epoch executed queries, so every epoch has a series point
    // with engine activity.
    for e in 0..run.trace.epochs.len() as u64 {
        assert!(
            run.obs.series.counter_at(e, "engine.op.seq_scan")
                + run.obs.series.counter_at(e, "engine.op.index_scan")
                + run.obs.series.counter_at(e, "engine.op.composite_scan")
                > 0,
            "epoch {e} shows no scan activity"
        );
    }
}

#[test]
fn flight_dump_is_identical_across_recording_levels() {
    // The ledger and series hold only simulated values, so Summary and
    // Full runs must serialize byte-identically.
    let a = run_colt_at(Level::Summary);
    let b = run_colt_at(Level::Full);
    assert_eq!(a.obs.flight_jsonl(), b.obs.flight_jsonl());
    assert!(!a.obs.flight_jsonl().is_empty());
}
