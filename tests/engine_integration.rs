//! Cross-crate integration: the engine must return identical answers
//! through every access path on the real TPC-H data, the optimizer's
//! estimates must be calibrated against executed costs, and OFFLINE's
//! structural optimum must match the literal exhaustive search.

use colt_repro::catalog::{IndexOrigin, PhysicalConfig};
use colt_repro::engine::{Collect, Eqo, Executor, IndexSetView, Optimizer, Query, SelPred};
use colt_repro::storage::Value;
use colt_repro::storage::Prng;
use colt_repro::workload::{generate, presets, stable_distribution};

/// Every workload query answers identically with and without indexes.
#[test]
fn all_access_paths_agree_on_tpch() {
    let data = generate(0.004, 3);
    let db = &data.db;
    let dist = stable_distribution(&data, 0);
    let mut rng = Prng::new(5);

    // Index every column the distribution restricts.
    let mut indexed = PhysicalConfig::new();
    for col in dist.relevant_columns() {
        indexed.create_index(db, col, IndexOrigin::Online);
    }
    let bare = PhysicalConfig::new();
    let opt = Optimizer::new(db);

    let mut index_plans = 0;
    for _ in 0..60 {
        let q = dist.sample(db, &mut rng);
        let plan_bare = opt.optimize(&q, IndexSetView::real(&bare));
        let plan_idx = opt.optimize(&q, IndexSetView::real(&indexed));
        if !plan_idx.used_indices().is_empty() {
            index_plans += 1;
        }
        let mut rows_bare = Executor::new(db, &bare)
            .execute(&q, &plan_bare, Collect::Rows)
            .expect("plan matches query")
            .rows;
        let mut rows_idx = Executor::new(db, &indexed)
            .execute(&q, &plan_idx, Collect::Rows)
            .expect("plan matches query")
            .rows;
        rows_bare.sort();
        rows_idx.sort();
        assert_eq!(rows_bare, rows_idx, "query {q}");
    }
    assert!(index_plans > 20, "indexes must actually be chosen ({index_plans}/60)");
}

/// Optimizer estimates are calibrated: cheaper-estimated plans must not
/// be drastically slower in actual execution, across the workload.
#[test]
fn estimates_track_actual_costs() {
    let data = generate(0.004, 3);
    let db = &data.db;
    let dist = stable_distribution(&data, 0);
    let mut rng = Prng::new(6);
    let cfg = PhysicalConfig::new();
    let opt = Optimizer::new(db);

    let mut est_total = 0.0;
    let mut act_total = 0.0;
    for _ in 0..40 {
        let q = dist.sample(db, &mut rng);
        let plan = opt.optimize(&q, IndexSetView::real(&cfg));
        let res =
            Executor::new(db, &cfg).execute(&q, &plan, Collect::CountOnly).expect("plan matches query");
        est_total += plan.est_cost();
        act_total += db.cost.cost_of(res.io());
    }
    let ratio = est_total / act_total;
    assert!(
        (0.3..3.0).contains(&ratio),
        "aggregate estimate/actual ratio {ratio:.2} out of calibration"
    );
}

/// OFFLINE's grouped-knapsack optimum equals literal exhaustive search
/// on a real (small) workload.
#[test]
fn offline_matches_exhaustive_on_real_workload() {
    let data = generate(0.004, 3);
    let preset = presets::stable(&data, 3);
    let workload = &preset.queries[..120];
    for budget in [preset.budget_pages / 2, preset.budget_pages] {
        let fast = colt_repro::offline::select(&data.db, workload, budget);
        let brute = colt_repro::offline::select_brute_force(&data.db, workload, budget);
        assert!(
            (fast.total_benefit - brute.total_benefit).abs() < 1e-6,
            "budget {budget}: {} vs {}",
            fast.total_benefit,
            brute.total_benefit
        );
        assert!(fast.total_pages <= budget);
    }
}

/// The reverse what-if of a materialized index agrees with the forward
/// what-if taken before materialization, on real workload queries.
#[test]
fn forward_and_reverse_whatif_agree() {
    let data = generate(0.004, 3);
    let db = &data.db;
    let inst = &data.instances[0];
    // Probe the unique key column: its equality gain is unambiguous at
    // any scale (fk columns can tip past the break-even at toy scales).
    let col = inst.col(db, "orders", "o_orderkey");
    let q = Query::single(
        inst.table("orders"),
        vec![SelPred::eq(col, Value::Int(17))],
    );
    let mut eqo = Eqo::new(db);
    let mut cfg = PhysicalConfig::new();
    let forward = eqo.what_if_optimize(&q, &[col], &cfg)[0].gain;
    cfg.create_index(db, col, IndexOrigin::Online);
    let reverse = eqo.what_if_optimize(&q, &[col], &cfg)[0].gain;
    assert!((forward - reverse).abs() < 1e-9, "forward {forward} vs reverse {reverse}");
    assert!(forward > 0.0);
}

/// Executing through the facade's prelude compiles and works (API
/// surface check).
#[test]
fn prelude_surface() {
    use colt_repro::prelude::*;
    let mut db = Database::new();
    let t = db.add_table(TableSchema::new("t", vec![Column::new("a", ValueType::Int)]));
    db.insert_rows(t, (0..100i64).map(|i| row_from(vec![Value::Int(i)])));
    db.analyze_all();
    let cfg = PhysicalConfig::new();
    let mut eqo = Eqo::new(&db);
    let q = Query::single(t, vec![SelPred::eq(ColRef::new(t, 0), 5i64)]);
    let plan = eqo.optimize(&q, &cfg);
    let res =
        Executor::new(&db, &cfg).execute(&q, &plan, Collect::CountOnly).expect("plan matches query");
    assert_eq!(res.row_count(), 1);
}

/// Ingestion while tuning: append rows with index maintenance while
/// COLT runs; queries stay correct, COLT keeps tuning, and auto-analyze
/// refreshes the optimizer's statistics.
#[test]
fn ingestion_while_tuning() {
    use colt_repro::catalog::{insert_row, Database, TableSchema, Column};
    use colt_repro::colt::{ColtConfig, ColtTuner};
    use colt_repro::storage::{row_from, ValueType};

    let mut db = Database::new();
    let t = db.add_table(TableSchema::new(
        "events",
        vec![Column::new("id", ValueType::Int), Column::new("kind", ValueType::Int)],
    ));
    db.insert_rows(t, (0..10_000i64).map(|i| row_from(vec![Value::Int(i), Value::Int(i % 8)])));
    db.analyze_all();

    let mut physical = PhysicalConfig::new();
    let mut tuner =
        ColtTuner::new(ColtConfig { storage_budget_pages: 10_000, ..Default::default() });
    let col = colt_repro::catalog::ColRef::new(t, 0);
    let mut next_id = 10_000i64;

    for i in 0..150i64 {
        // Every query is followed by a small ingest burst.
        {
            let mut eqo = Eqo::new(&db);
            let q = Query::single(t, vec![SelPred::eq(col, (i * 97) % next_id)]);
            let plan = eqo.optimize(&q, &physical);
            let res = Executor::new(&db, &physical)
                .execute(&q, &plan, Collect::CountOnly)
                .expect("plan matches query");
            assert_eq!(res.row_count(), 1, "exactly one match for a key lookup");
            tuner.on_query(&db, &mut physical, &mut eqo, &q, &plan);
        }
        for _ in 0..20 {
            insert_row(
                &mut db,
                &mut physical,
                t,
                colt_repro::storage::row_from(vec![
                    Value::Int(next_id),
                    Value::Int(next_id % 8),
                ]),
            );
            next_id += 1;
        }
        db.auto_analyze(0.1);
    }

    // COLT materialized the key index despite concurrent growth…
    assert!(physical.contains(col), "index materialized under ingestion");
    // …and the maintained index covers all ingested rows.
    let m = physical.get(col).unwrap();
    assert_eq!(m.tree.len() as i64, next_id, "index covers every ingested row");
    // A lookup for a freshly ingested row goes through the index.
    let mut eqo = Eqo::new(&db);
    let q = Query::single(t, vec![SelPred::eq(col, next_id - 1)]);
    let plan = eqo.optimize(&q, &physical);
    assert_eq!(plan.used_indices(), vec![col]);
    let res = Executor::new(&db, &physical)
        .execute(&q, &plan, Collect::CountOnly)
        .expect("plan matches query");
    assert_eq!(res.row_count(), 1);
}
